// Package index implements the XML indexing structures of MonetDB/XQuery
// that ROX relies on (Sec 2.2 of the paper):
//
//   - an element index D∋elt(q): qualified name → all element nodes with
//     that name, in document order;
//   - a text value index D∋text(v): value → all text nodes with that value;
//   - an attribute value index D∋attr(v, qelt, qattr): value (+ element and
//     attribute name restrictions) → owner elements, plus the attribute-node
//     variants the Join Graph vertices need.
//
// All lookups return pre-materialized, duplicate-free, document-ordered node
// slices, so the *count* of qualifying nodes is available at lookup cost —
// the property Phase 1 of Algorithm 1 depends on. Lookups are O(1) after the
// one-time index build (hash on name/value), and the numeric range lookup is
// O(log n + |R|) over a sorted auxiliary, the "ordered store" flavour of the
// paper's value index.
//
// Returned slices are owned by the index: callers must copy before mutating
// (Table construction in the runtime always copies).
package index

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Index holds all per-document indices. Build one with New (an O(n) scan)
// or attach one to the persistent sections of a packed container with
// FromPacked / OpenPackedFile (no scan — the mapped sections are the index);
// afterwards it is immutable and safe for concurrent readers. Both backings
// answer every lookup identically.
type Index struct {
	doc *xmltree.Document

	// pk is the mapped backing: non-nil for an index attached to persistent
	// sections, in which case the map fields below stay nil and every
	// accessor reads the offset tables and posting arrays instead.
	pk *packed

	// base is the overlaid index for a delta built with NewDelta (delta.go):
	// the map fields then cover only the appended node range, and accessors
	// answer base-then-delta. Nil for a single-level index.
	base *Index

	elems map[int32][]xmltree.NodeID // elem name id → elem nodes
	attrs map[int32][]xmltree.NodeID // attr name id → attr nodes
	texts map[int32][]xmltree.NodeID // value id → text nodes

	// attrEq maps (attr name id, value id) → attribute nodes, the index
	// probed by the nested-loop index-lookup join on attribute vertices.
	attrEq map[attrKey][]xmltree.NodeID

	// numericTexts lists text nodes whose value parses as a number, sorted
	// by value; it answers range predicates like text() < 145.
	numericTexts []numText

	// allTexts lists every text node in document order — the kind
	// restriction S = D_text of the staircase join for predicate-free
	// text() vertices.
	allTexts []xmltree.NodeID

	// allElems and allAttrs are the kind restrictions S = D_elem and
	// S = D_attr ("*" and "@*" tests).
	allElems []xmltree.NodeID
	allAttrs []xmltree.NodeID
}

type attrKey struct {
	name  int32
	value int32
}

type numText struct {
	val float64
	pre xmltree.NodeID
}

// New builds all indices for doc with one scan over the node table.
func New(doc *xmltree.Document) *Index {
	ix := &Index{
		doc:    doc,
		elems:  make(map[int32][]xmltree.NodeID),
		attrs:  make(map[int32][]xmltree.NodeID),
		texts:  make(map[int32][]xmltree.NodeID),
		attrEq: make(map[attrKey][]xmltree.NodeID),
	}
	for i := 0; i < doc.Len(); i++ {
		n := xmltree.NodeID(i)
		switch doc.Kind(n) {
		case xmltree.KindElem:
			id := doc.NameID(n)
			ix.elems[id] = append(ix.elems[id], n)
			ix.allElems = append(ix.allElems, n)
		case xmltree.KindAttr:
			name, val := doc.NameID(n), doc.ValueID(n)
			ix.attrs[name] = append(ix.attrs[name], n)
			ix.allAttrs = append(ix.allAttrs, n)
			k := attrKey{name, val}
			ix.attrEq[k] = append(ix.attrEq[k], n)
		case xmltree.KindText:
			val := doc.ValueID(n)
			ix.texts[val] = append(ix.texts[val], n)
			ix.allTexts = append(ix.allTexts, n)
			if f, err := strconv.ParseFloat(strings.TrimSpace(doc.Value(n)), 64); err == nil {
				ix.numericTexts = append(ix.numericTexts, numText{f, n})
			}
		}
	}
	sort.Slice(ix.numericTexts, func(a, b int) bool {
		if ix.numericTexts[a].val != ix.numericTexts[b].val {
			return ix.numericTexts[a].val < ix.numericTexts[b].val
		}
		return ix.numericTexts[a].pre < ix.numericTexts[b].pre
	})
	return ix
}

// Doc returns the indexed document.
func (ix *Index) Doc() *xmltree.Document { return ix.doc }

// Elements implements D∋elt(q): all element nodes with qualified name q, in
// document order. The slice length is the exact count.
func (ix *Index) Elements(qname string) []xmltree.NodeID {
	if ix.base != nil {
		return ix.deltaElements(qname)
	}
	id, ok := ix.doc.QNames().Lookup(qname)
	if !ok {
		return nil
	}
	if ix.pk != nil {
		return ix.pk.postings(ix.pk.elemOff, ix.pk.elemPst, id)
	}
	return ix.elems[id]
}

// AttributesByName returns all attribute nodes named qattr, in document
// order (the vertex table of an @name Join Graph vertex).
func (ix *Index) AttributesByName(qattr string) []xmltree.NodeID {
	if ix.base != nil {
		return ix.deltaAttributesByName(qattr)
	}
	id, ok := ix.doc.QNames().Lookup(qattr)
	if !ok {
		return nil
	}
	if ix.pk != nil {
		return ix.pk.postings(ix.pk.attrOff, ix.pk.attrPst, id)
	}
	return ix.attrs[id]
}

// TextEq implements D∋text(v): all text nodes whose value equals v.
func (ix *Index) TextEq(v string) []xmltree.NodeID {
	if ix.base != nil {
		return ix.deltaTextEq(v)
	}
	id, ok := ix.doc.Values().Lookup(v)
	if !ok {
		return nil
	}
	if ix.pk != nil {
		return ix.pk.postings(ix.pk.textOff, ix.pk.textPst, id)
	}
	return ix.texts[id]
}

// AttrEq returns all attribute nodes named qattr whose value equals v — the
// probe used by the nested-loop index-lookup join on attribute vertices.
func (ix *Index) AttrEq(qattr, v string) []xmltree.NodeID {
	if ix.base != nil {
		return ix.deltaAttrEq(qattr, v)
	}
	name, ok := ix.doc.QNames().Lookup(qattr)
	if !ok {
		return nil
	}
	val, ok := ix.doc.Values().Lookup(v)
	if !ok {
		return nil
	}
	if ix.pk != nil {
		key := aeqKey(name, val)
		i := sort.Search(len(ix.pk.aeqKey), func(i int) bool { return ix.pk.aeqKey[i] >= key })
		if i == len(ix.pk.aeqKey) || ix.pk.aeqKey[i] != key {
			return nil
		}
		return ix.pk.postings(ix.pk.aeqOff, ix.pk.aeqPst, int32(i))
	}
	return ix.attrEq[attrKey{name, val}]
}

// AttrParents implements the paper's D∋attr(v, qelt, qattr): the owner
// elements with name qelt of attributes named qattr valued v. Pass qelt ""
// to skip the element-name restriction.
func (ix *Index) AttrParents(v, qelt, qattr string) []xmltree.NodeID {
	attrs := ix.AttrEq(qattr, v)
	if len(attrs) == 0 {
		return nil
	}
	var eltID int32 = -1
	if qelt != "" {
		id, ok := ix.doc.QNames().Lookup(qelt)
		if !ok {
			return nil
		}
		eltID = id
	}
	out := make([]xmltree.NodeID, 0, len(attrs))
	for _, a := range attrs {
		p := ix.doc.Parent(a)
		if eltID >= 0 && ix.doc.NameID(p) != eltID {
			continue
		}
		out = append(out, p)
	}
	// Parents of document-ordered attributes are document-ordered, and an
	// element owns each attribute name at most once — no dedup needed.
	if len(out) == 0 {
		return nil
	}
	return out
}

// RangeOp is a comparison operator for numeric range lookups.
type RangeOp int

// Comparison operators supported by TextRange.
const (
	Lt    RangeOp = iota // <
	Le                   // <=
	Gt                   // >
	Ge                   // >=
	EqNum                // = (numeric)
)

// String returns the operator's lexical form.
func (op RangeOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case EqNum:
		return "="
	default:
		return "?"
	}
}

// Compare reports whether v op bound holds.
func (op RangeOp) Compare(v, bound float64) bool {
	switch op {
	case Lt:
		return v < bound
	case Le:
		return v <= bound
	case Gt:
		return v > bound
	case Ge:
		return v >= bound
	case EqNum:
		return v == bound
	default:
		return false
	}
}

// numLen/numValAt/numPreAt read the sorted numeric auxiliary through
// whichever backing the index has (struct slice on the heap, two parallel
// mapped arrays when packed).
func (ix *Index) numLen() int {
	if ix.pk != nil {
		return len(ix.pk.numVal)
	}
	return len(ix.numericTexts)
}

func (ix *Index) numValAt(i int) float64 {
	if ix.pk != nil {
		return ix.pk.numVal[i]
	}
	return ix.numericTexts[i].val
}

func (ix *Index) numPreAt(i int) xmltree.NodeID {
	if ix.pk != nil {
		return ix.pk.numPre[i]
	}
	return ix.numericTexts[i].pre
}

// TextRange returns all text nodes with a numeric value v satisfying
// "v op bound", in document order. Cost O(log n + |R| log |R|).
func (ix *Index) TextRange(op RangeOp, bound float64) []xmltree.NodeID {
	if ix.base != nil {
		// Both halves come out pre-sorted and the delta's pres all exceed the
		// base's, so concatenation is the merge.
		return concatNodes(ix.base.TextRange(op, bound), ix.textRangeSelf(op, bound))
	}
	return ix.textRangeSelf(op, bound)
}

// textRangeSelf answers TextRange over this level's own numeric auxiliary.
func (ix *Index) textRangeSelf(op RangeOp, bound float64) []xmltree.NodeID {
	n := ix.numLen()
	var lo, hi int // half-open [lo, hi) range in the value-sorted auxiliary
	switch op {
	case Lt:
		lo, hi = 0, sort.Search(n, func(i int) bool { return ix.numValAt(i) >= bound })
	case Le:
		lo, hi = 0, sort.Search(n, func(i int) bool { return ix.numValAt(i) > bound })
	case Gt:
		lo, hi = sort.Search(n, func(i int) bool { return ix.numValAt(i) > bound }), n
	case Ge:
		lo, hi = sort.Search(n, func(i int) bool { return ix.numValAt(i) >= bound }), n
	case EqNum:
		lo = sort.Search(n, func(i int) bool { return ix.numValAt(i) >= bound })
		hi = sort.Search(n, func(i int) bool { return ix.numValAt(i) > bound })
	}
	if lo >= hi {
		return nil
	}
	out := make([]xmltree.NodeID, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = ix.numPreAt(i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Texts returns every text node of the document in document order (the kind
// restriction D_text).
func (ix *Index) Texts() []xmltree.NodeID {
	if ix.base != nil {
		return concatNodes(ix.base.Texts(), ix.allTexts)
	}
	if ix.pk != nil {
		return ix.pk.allText
	}
	return ix.allTexts
}

// AllElements returns every element node in document order (the kind
// restriction D_elem, the "*" name test).
func (ix *Index) AllElements() []xmltree.NodeID {
	if ix.base != nil {
		return concatNodes(ix.base.AllElements(), ix.allElems)
	}
	if ix.pk != nil {
		return ix.pk.allElem
	}
	return ix.allElems
}

// AllAttributes returns every attribute node in document order (the "@*"
// test).
func (ix *Index) AllAttributes() []xmltree.NodeID {
	if ix.base != nil {
		return concatNodes(ix.base.AllAttributes(), ix.allAttrs)
	}
	if ix.pk != nil {
		return ix.pk.allAttr
	}
	return ix.allAttrs
}

// CountElements returns the number of elements named qname at index-lookup
// cost, without materializing anything new.
func (ix *Index) CountElements(qname string) int { return len(ix.Elements(qname)) }

// CountTextEq returns the number of text nodes valued v.
func (ix *Index) CountTextEq(v string) int { return len(ix.TextEq(v)) }

// ElementNames returns all distinct element names present in the document,
// sorted (used by catalogs and the plan enumerator).
func (ix *Index) ElementNames() []string {
	if ix.base != nil {
		return ix.deltaElementNames()
	}
	var out []string
	if ix.pk != nil {
		for id := 0; id+1 < len(ix.pk.elemOff); id++ {
			if ix.pk.elemOff[id+1] > ix.pk.elemOff[id] {
				out = append(out, ix.doc.QNames().String(int32(id)))
			}
		}
	} else {
		out = make([]string, 0, len(ix.elems))
		for id := range ix.elems {
			out = append(out, ix.doc.QNames().String(id))
		}
	}
	sort.Strings(out)
	return out
}
