package synopsis

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmltree"
	"repro/internal/xpath"

	"repro/internal/index"
)

const sample = `<site>
  <regions>
    <item id="i1"><quantity>1</quantity></item>
    <item id="i2"><quantity>5</quantity></item>
  </regions>
  <people>
    <person id="p1"><name>Ada</name><item><quantity>9</quantity></item></person>
  </people>
</site>`

func guideOf(t *testing.T, src string) (*Guide, *xmltree.Document) {
	t.Helper()
	d, err := xmltree.ParseString("s.xml", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(d), d
}

func TestGuideExactLinearPaths(t *testing.T) {
	g, _ := guideOf(t, sample)
	cases := []struct {
		path string
		want int
	}{
		{"/site", 1},
		{"/site/regions/item", 2},
		{"//item", 3}, // 2 under regions + 1 under person
		{"//item/quantity", 3},
		{"/site/regions/item/quantity", 2},
		{"//person", 1},
		{"//person/item", 1},
		{"//person//quantity", 1},
		{"//nosuch", 0},
		{"/site//quantity", 3},
	}
	for _, c := range cases {
		got, err := g.EstimatePath(c.path)
		if err != nil {
			t.Errorf("%s: %v", c.path, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestGuideCountsAndSize(t *testing.T) {
	g, d := guideOf(t, sample)
	if g.CountName("item") != d.CountName("item") {
		t.Errorf("CountName(item) = %d, want %d", g.CountName("item"), d.CountName("item"))
	}
	// Distinct label paths: site, regions, regions/item, regions/item/quantity,
	// people, person, person/name, person/item, person/item/quantity = 9.
	if g.Size() != 9 {
		t.Errorf("Size = %d, want 9", g.Size())
	}
	if !strings.Contains(g.String(), "item ×2") {
		t.Errorf("String() missing counts:\n%s", g.String())
	}
}

// TestGuideMatchesXPathOnRandomDocs: DataGuide linear-path counts must be
// exact — cross-check against the XPath evaluator on generated documents.
func TestGuideMatchesXPathOnRandomDocs(t *testing.T) {
	cfg := datagen.DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 120, 90, 70
	d := datagen.XMark(cfg)
	g := Build(d)
	ix := index.New(d)
	paths := []string{
		"//person", "//open_auction", "//open_auction/bidder",
		"//bidder/personref", "//item/quantity", "/site/people/person",
		"//open_auction//personref", "/site//bidder", "//person/province",
	}
	for _, p := range paths {
		want, err := xpath.Count(ix, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		got, err := g.EstimatePath(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got != want {
			t.Errorf("%s: guide %d, xpath %d", p, got, want)
		}
	}
}

func TestPredicateSelectivity(t *testing.T) {
	// 100 items with quantity 1..100: selectivity of quantity < 50 ≈ 0.49.
	b := xmltree.NewBuilder("q.xml")
	b.StartElem("r")
	for i := 1; i <= 100; i++ {
		b.StartElem("item")
		b.StartElem("quantity")
		b.Text(intStr(i))
		b.EndElem()
		b.EndElem()
	}
	b.EndElem()
	d := b.MustBuild()
	g := Build(d)
	est, err := g.EstimateWithPredicates("//item", ValuePred{Op: "<", Val: "50"})
	if err != nil {
		t.Fatal(err)
	}
	if est < 35 || est > 65 {
		t.Errorf("estimate = %.1f, want ≈49", est)
	}
	// Out-of-range predicate → ~0.
	est, err = g.EstimateWithPredicates("//item", ValuePred{Op: "<", Val: "0"})
	if err != nil {
		t.Fatal(err)
	}
	if est > 5 {
		t.Errorf("impossible predicate estimate = %.1f", est)
	}
	// Equality on a string value.
	est, err = g.EstimateWithPredicates("//item", ValuePred{Op: "=", Val: "42"})
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || est > 10 {
		t.Errorf("point estimate = %.1f", est)
	}
}

// TestIndependenceBlindSpot demonstrates the failure mode ROX fixes: on
// correlated data the synopsis multiplies marginal selectivities and is off
// by a large factor, while remaining decent on independent data.
func TestIndependenceBlindSpot(t *testing.T) {
	// Perfectly correlated: <a><x>1</x><y>1</y></a> or <a><x>0</x><y>0</y></a>.
	// P(x=1) = P(y=1) = 0.5, but P(x=1 ∧ y=1) = 0.5, not 0.25.
	rng := rand.New(rand.NewSource(3))
	b := xmltree.NewBuilder("c.xml")
	b.StartElem("r")
	actual := 0
	for i := 0; i < 400; i++ {
		v := rng.Intn(2)
		if v == 1 {
			actual++
		}
		b.StartElem("a")
		b.StartElem("x")
		b.Text(intStr(v))
		b.EndElem()
		b.StartElem("y")
		b.Text(intStr(v))
		b.EndElem()
		b.EndElem()
	}
	b.EndElem()
	g := Build(b.MustBuild())
	est, err := g.EstimateWithPredicates("//a",
		ValuePred{Op: "=", Val: "1"}, ValuePred{Op: "=", Val: "1"})
	if err != nil {
		t.Fatal(err)
	}
	// The independence estimate must undershoot the real count badly
	// (~N/4 vs ~N/2) — that gap is the paper's motivation.
	if est > float64(actual)*0.8 {
		t.Errorf("synopsis estimate %.0f suspiciously close to the correlated truth %d — independence not modeled?", est, actual)
	}
	if est <= 0 {
		t.Errorf("estimate must be positive")
	}
}

func TestValueSummaryHeavyHitters(t *testing.T) {
	v := NewValueSummary(8, 4)
	for i := 0; i < 60; i++ {
		v.Add("frequent")
	}
	for i := 0; i < 5; i++ {
		v.Add("rare" + intStr(i))
	}
	v.Seal()
	if got := v.EstimateMatch("=", "frequent"); got < 0.5 {
		t.Errorf("heavy hitter estimate = %.2f, want > 0.5", got)
	}
	if got := v.EstimateMatch("=", "never-seen"); got > 0.05 {
		t.Errorf("unseen estimate = %.3f, want tiny", got)
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, bad := range []string{"", "relative/x", "/", "//a//"} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func intStr(i int) string {
	return strconvItoa(i)
}

func strconvItoa(i int) string {
	// small helper avoiding fmt in hot loops
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
