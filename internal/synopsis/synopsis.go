// Package synopsis implements the structural summaries that compile-time
// XML optimizers build their cardinality estimates on — the DataGuide
// family of the paper's related work ([15], Sec 5). A Guide is a path trie
// over the document: one node per distinct root-to-element label path,
// carrying exact occurrence counts, attribute counts, and a value summary
// (numeric histogram + heavy hitters) of the text content.
//
// Linear paths without predicates are estimated *exactly* (that is the
// DataGuide guarantee); predicates and branches fall back to the attribute
// value independence assumption — precisely the blind spot ROX exploits
// (Sec 5: "cardinality estimation techniques are based on the attribute
// value independence heuristic").
package synopsis

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Guide is a DataGuide-style synopsis of one document.
type Guide struct {
	doc  string
	root *GNode
	// total element count, for //-step fan-out estimates.
	totalElems int
	// byName aggregates counts per element name across all paths.
	byName map[string]int
	// byAttr aggregates attribute counts per attribute name.
	byAttr map[string]int
	// textTotal counts all text nodes; globalValues summarizes all text
	// values (for predicate selectivities without path context).
	textTotal    int
	globalValues *ValueSummary
}

// GNode is one distinct label path.
type GNode struct {
	Name     string
	Count    int // elements with exactly this root path
	Children map[string]*GNode
	Attrs    map[string]int // attribute name → occurrences at this path
	Texts    int            // text children at this path
	Values   *ValueSummary  // summary of the direct text values
}

// Build constructs the synopsis with a single scan over the node table.
func Build(d *xmltree.Document) *Guide {
	g := &Guide{
		doc:          d.Name(),
		root:         newGNode(""),
		byName:       map[string]int{},
		byAttr:       map[string]int{},
		globalValues: NewValueSummary(32, 16),
	}
	// stack[i] is the guide node of the open element at depth i.
	stack := []*GNode{g.root}
	for i := 0; i < d.Len(); i++ {
		n := xmltree.NodeID(i)
		if d.Kind(n) == xmltree.KindDoc {
			continue // the synthetic root is stack[0]
		}
		level := int(d.Level(n))
		if level < len(stack) {
			stack = stack[:level]
		}
		parent := stack[len(stack)-1]
		switch d.Kind(n) {
		case xmltree.KindElem:
			name := d.NodeName(n)
			child := parent.Children[name]
			if child == nil {
				child = newGNode(name)
				parent.Children[name] = child
			}
			child.Count++
			g.totalElems++
			g.byName[name]++
			stack = append(stack, child)
		case xmltree.KindAttr:
			parent.Attrs[d.NodeName(n)]++
			g.byAttr[d.NodeName(n)]++
		case xmltree.KindText:
			parent.Texts++
			g.textTotal++
			parent.Values.Add(d.Value(n))
			g.globalValues.Add(d.Value(n))
		}
	}
	g.finish(g.root)
	return g
}

func newGNode(name string) *GNode {
	return &GNode{
		Name:     name,
		Children: map[string]*GNode{},
		Attrs:    map[string]int{},
		Values:   NewValueSummary(16, 8),
	}
}

func (g *Guide) finish(n *GNode) {
	n.Values.Seal()
	for _, c := range n.Children {
		g.finish(c)
	}
	g.globalValues.Seal()
}

// Doc returns the summarized document's name.
func (g *Guide) Doc() string { return g.doc }

// Size returns the number of guide nodes (distinct label paths) — the
// synopsis footprint.
func (g *Guide) Size() int {
	var count func(*GNode) int
	count = func(n *GNode) int {
		total := 1
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	return count(g.root) - 1 // exclude the synthetic root
}

// CountName returns the exact number of elements with the given name.
func (g *Guide) CountName(name string) int { return g.byName[name] }

// CountAttr returns the exact number of attributes with the given name.
func (g *Guide) CountAttr(name string) int { return g.byAttr[name] }

// TextCount returns the total number of text nodes.
func (g *Guide) TextCount() int { return g.textTotal }

// GlobalValueSelectivity estimates the fraction of all text values
// satisfying "op lit" from the document-wide value summary.
func (g *Guide) GlobalValueSelectivity(op, lit string) float64 {
	return g.globalValues.EstimateMatch(op, lit)
}

// PathStep is one step of a linear path pattern.
type PathStep struct {
	Desc bool   // descendant step (//) instead of child (/)
	Name string // element name ("" is not allowed; use EstimatePath on names only)
}

// CountPath returns the exact number of elements reached by the linear path
// from the document root — the DataGuide query. Descendant steps are
// resolved by walking all matching guide branches, so the result is still
// exact (guides store every distinct path).
func (g *Guide) CountPath(steps []PathStep) int {
	frontier := map[*GNode]bool{g.root: true}
	for _, st := range steps {
		next := map[*GNode]bool{}
		for n := range frontier {
			if st.Desc {
				collectDesc(n, st.Name, next)
			} else if c := n.Children[st.Name]; c != nil {
				next[c] = true
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return 0
		}
	}
	total := 0
	for n := range frontier {
		total += n.Count
	}
	return total
}

func collectDesc(n *GNode, name string, out map[*GNode]bool) {
	for _, c := range n.Children {
		if c.Name == name {
			out[c] = true
		}
		collectDesc(c, name, out)
	}
}

// ParsePath parses a linear pattern like "//open_auction/bidder//personref".
func ParsePath(s string) ([]PathStep, error) {
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("synopsis: path must be absolute: %q", s)
	}
	var steps []PathStep
	i := 0
	for i < len(s) {
		desc := false
		if strings.HasPrefix(s[i:], "//") {
			desc = true
			i += 2
		} else if s[i] == '/' {
			i++
		} else {
			return nil, fmt.Errorf("synopsis: expected '/' at %d in %q", i, s)
		}
		j := i
		for j < len(s) && s[j] != '/' {
			j++
		}
		if j == i {
			return nil, fmt.Errorf("synopsis: empty step at %d in %q", i, s)
		}
		steps = append(steps, PathStep{Desc: desc, Name: s[i:j]})
		i = j
	}
	return steps, nil
}

// EstimatePath is CountPath over a textual pattern.
func (g *Guide) EstimatePath(pattern string) (int, error) {
	steps, err := ParsePath(pattern)
	if err != nil {
		return 0, err
	}
	return g.CountPath(steps), nil
}

// EstimateWithPredicates estimates the cardinality of a path whose target
// carries value predicates, using the independence assumption: the exact
// structural count is scaled by each predicate's selectivity estimated from
// the value summaries. This is exactly how far a state-of-the-art static
// estimator gets — and where correlated data breaks it.
func (g *Guide) EstimateWithPredicates(pattern string, preds ...ValuePred) (float64, error) {
	steps, err := ParsePath(pattern)
	if err != nil {
		return 0, err
	}
	structural := float64(g.CountPath(steps))
	sel := 1.0
	for _, p := range preds {
		sel *= g.predSelectivity(steps, p)
	}
	return structural * sel, nil
}

// ValuePred is a value predicate on the text content below the path target.
type ValuePred struct {
	Op  string // "=", "<", "<=", ">", ">="
	Val string
}

// predSelectivity estimates the fraction of target elements satisfying the
// predicate from the merged value summaries of the target guide nodes.
func (g *Guide) predSelectivity(steps []PathStep, p ValuePred) float64 {
	frontier := map[*GNode]bool{g.root: true}
	for _, st := range steps {
		next := map[*GNode]bool{}
		for n := range frontier {
			if st.Desc {
				collectDesc(n, st.Name, next)
			} else if c := n.Children[st.Name]; c != nil {
				next[c] = true
			}
		}
		frontier = next
	}
	// Merge target summaries (including their descendants' text, since
	// predicates like [.//current/text() < x] look below the target); for
	// simplicity use the direct summaries of all descendant-or-self nodes.
	var texts int
	var matching float64
	var visit func(n *GNode)
	visit = func(n *GNode) {
		texts += n.Texts
		matching += n.Values.EstimateMatch(p.Op, p.Val) * float64(n.Texts)
		for _, c := range n.Children {
			visit(c)
		}
	}
	for n := range frontier {
		visit(n)
	}
	if texts == 0 {
		return 0.1 // textbook fallback selectivity
	}
	sel := matching / float64(texts)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// ValueSummary summarizes a stream of text values: an equi-width histogram
// over the numeric values plus a heavy-hitter table for strings
// (space-efficient — the synopsis never stores the data).
type ValueSummary struct {
	buckets   int
	topK      int
	numCount  int
	min, max  float64
	hist      []int
	raw       []float64 // buffered until Seal fixes the bucket bounds
	strCount  int
	heavy     map[string]int
	distilled bool
}

// NewValueSummary returns a summary with the given histogram resolution and
// heavy-hitter capacity.
func NewValueSummary(buckets, topK int) *ValueSummary {
	return &ValueSummary{buckets: buckets, topK: topK, heavy: map[string]int{}}
}

// Add records one value.
func (v *ValueSummary) Add(s string) {
	if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
		v.numCount++
		v.raw = append(v.raw, f)
		return
	}
	v.strCount++
	// Space-saving-ish heavy hitters: admit until capacity, then decay.
	if _, ok := v.heavy[s]; ok || len(v.heavy) < v.topK {
		v.heavy[s]++
		return
	}
	for k := range v.heavy {
		v.heavy[k]--
		if v.heavy[k] <= 0 {
			delete(v.heavy, k)
		}
	}
}

// Seal freezes the histogram bounds and discards the raw buffer.
func (v *ValueSummary) Seal() {
	if v.distilled {
		return
	}
	v.distilled = true
	if len(v.raw) == 0 {
		return
	}
	v.min, v.max = v.raw[0], v.raw[0]
	for _, f := range v.raw {
		v.min = math.Min(v.min, f)
		v.max = math.Max(v.max, f)
	}
	v.hist = make([]int, v.buckets)
	for _, f := range v.raw {
		v.hist[v.bucket(f)]++
	}
	v.raw = nil
}

func (v *ValueSummary) bucket(f float64) int {
	if v.max == v.min {
		return 0
	}
	b := int(float64(v.buckets) * (f - v.min) / (v.max - v.min))
	if b >= v.buckets {
		b = v.buckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// EstimateMatch returns the estimated fraction of summarized values
// satisfying "value op literal".
func (v *ValueSummary) EstimateMatch(op, lit string) float64 {
	total := v.numCount + v.strCount
	if total == 0 {
		return 0
	}
	if f, err := strconv.ParseFloat(lit, 64); err == nil && v.numCount > 0 {
		return v.estimateNumeric(op, f) * float64(v.numCount) / float64(total)
	}
	// String equality via heavy hitters; unseen strings get a uniform
	// guess over the unseen mass.
	if op == "=" {
		if c, ok := v.heavy[lit]; ok {
			return float64(c) / float64(total)
		}
		return 0.5 / float64(total+1)
	}
	return 0.1
}

func (v *ValueSummary) estimateNumeric(op string, f float64) float64 {
	if v.numCount == 0 {
		return 0
	}
	if v.hist == nil {
		return 0.1
	}
	width := (v.max - v.min) / float64(len(v.hist))
	cumBelow := 0.0 // estimated count strictly below f
	for i, c := range v.hist {
		lo := v.min + float64(i)*width
		hi := lo + width
		switch {
		case hi <= f:
			cumBelow += float64(c)
		case lo < f:
			if width > 0 {
				cumBelow += float64(c) * (f - lo) / width
			}
		}
	}
	frac := cumBelow / float64(v.numCount)
	switch op {
	case "<":
		return frac
	case "<=":
		return math.Min(1, frac+1.0/float64(v.numCount))
	case ">":
		return 1 - frac
	case ">=":
		return math.Min(1, 1-frac+1.0/float64(v.numCount))
	case "=":
		if f < v.min || f > v.max {
			return 0
		}
		return 1 / math.Max(1, float64(v.numCount))
	default:
		return 0.1
	}
}

// String renders the guide as an indented path tree with counts (debugging
// and documentation).
func (g *Guide) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DataGuide(%s): %d paths, %d elements\n", g.doc, g.Size(), g.totalElems)
	var walk func(n *GNode, depth int)
	walk = func(n *GNode, depth int) {
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := n.Children[name]
			fmt.Fprintf(&sb, "%s%s ×%d", strings.Repeat("  ", depth), name, c.Count)
			if c.Texts > 0 {
				fmt.Fprintf(&sb, " (text ×%d)", c.Texts)
			}
			if len(c.Attrs) > 0 {
				attrs := make([]string, 0, len(c.Attrs))
				for a := range c.Attrs {
					attrs = append(attrs, "@"+a)
				}
				sort.Strings(attrs)
				fmt.Fprintf(&sb, " %s", strings.Join(attrs, " "))
			}
			sb.WriteString("\n")
			walk(c, depth+1)
		}
	}
	walk(g.root, 0)
	return sb.String()
}
