package ingest

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
)

// Dir is a durable ingest state directory: one WAL plus the compacted packed
// snapshots the WAL's batches apply on top of, tied together by a MANIFEST
// file. The manifest is the commit point of a compaction — it is replaced by
// an atomic rename, so a crash anywhere inside a compaction leaves the
// directory describing one consistent (snapshot set, WAL) pair: either the
// old snapshots with the old (full) WAL, or the new snapshots with the new
// (empty) WAL. Never new snapshots with the old WAL, which would double-apply
// the compacted batches on restart.
//
// Layout:
//
//	MANIFEST            JSON manifest: current WAL file + snapshot files
//	ingest.<epoch>.wal  the WAL of compaction epoch <epoch>
//	<doc>.<epoch>.roxd  packed snapshot of a document, name URL-escaped
//
// Dir is not safe for concurrent use; the Ingester serializes access.
type Dir struct {
	path string
	wal  *WAL
	man  manifest
}

// manifest is the JSON body of the MANIFEST file.
type manifest struct {
	// Epoch counts compactions; file names embed it so a new epoch never
	// overwrites a live file.
	Epoch uint64 `json:"epoch"`
	// WAL is the current log's file name within the directory.
	WAL string `json:"wal"`
	// Snapshots maps document names to their packed snapshot file names.
	// Documents the corpus load already provides appear only once compacted.
	Snapshots map[string]string `json:"snapshots,omitempty"`
}

const manifestName = "MANIFEST"

// OpenDir opens (creating if needed) an ingest directory, loads its
// manifest, opens and replays its WAL, and returns the directory handle with
// the committed batches to re-apply. Snapshot files listed by the manifest
// are NOT loaded here — the caller registers them with its engine first (see
// SnapshotPaths), then applies the batches.
func OpenDir(path string) (*Dir, []Batch, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, nil, err
	}
	d := &Dir{path: path}
	raw, err := os.ReadFile(filepath.Join(path, manifestName))
	switch {
	case os.IsNotExist(err):
		d.man = manifest{Epoch: 0, WAL: walFileName(0)}
		if err := d.writeManifest(); err != nil {
			return nil, nil, err
		}
	case err != nil:
		return nil, nil, err
	default:
		if err := json.Unmarshal(raw, &d.man); err != nil {
			return nil, nil, fmt.Errorf("ingest: %s: corrupt manifest: %w", path, err)
		}
		if d.man.WAL == "" {
			return nil, nil, fmt.Errorf("ingest: %s: manifest names no wal file", path)
		}
	}
	wal, batches, err := Open(filepath.Join(path, d.man.WAL))
	if err != nil {
		return nil, nil, err
	}
	d.wal = wal
	return d, batches, nil
}

// WAL returns the directory's current write-ahead log.
func (d *Dir) WAL() *WAL { return d.wal }

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// Epoch returns the current compaction epoch.
func (d *Dir) Epoch() uint64 { return d.man.Epoch }

// SnapshotPaths returns document name → absolute snapshot path for every
// compacted snapshot the manifest lists, for the caller to register before
// applying the replayed batches.
func (d *Dir) SnapshotPaths() map[string]string {
	out := make(map[string]string, len(d.man.Snapshots))
	for doc, file := range d.man.Snapshots {
		out[doc] = filepath.Join(d.path, file)
	}
	return out
}

// SnapshotFile returns the absolute path a compaction should write the named
// document's new packed snapshot to: unique per epoch, so writing it never
// clobbers a file the current manifest references.
func (d *Dir) SnapshotFile(doc string) string {
	return filepath.Join(d.path, snapFileName(doc, d.man.Epoch+1))
}

// CommitCompaction atomically advances the directory to the next epoch:
// snaps maps document names to snapshot files the caller has already written
// via SnapshotFile paths. A fresh empty WAL is created, the manifest is
// swapped by rename, the old WAL handle is replaced, and superseded files
// are deleted best-effort. On error before the manifest rename, the old
// epoch (old WAL, old snapshots) remains fully in force.
func (d *Dir) CommitCompaction(snaps map[string]string) error {
	epoch := d.man.Epoch + 1
	// A fresh, durable, empty WAL for the new epoch.
	newWALName := walFileName(epoch)
	newWAL, batches, err := Open(filepath.Join(d.path, newWALName))
	if err != nil {
		return err
	}
	if len(batches) != 0 {
		newWAL.Close()
		return fmt.Errorf("ingest: %s: new wal %s not empty", d.path, newWALName)
	}
	// Carry the committed sequence forward so batch numbering never moves
	// backwards across a compaction.
	newWAL.seq = d.wal.seq

	next := manifest{Epoch: epoch, WAL: newWALName, Snapshots: make(map[string]string)}
	for doc, file := range d.man.Snapshots {
		next.Snapshots[doc] = file
	}
	for doc := range snaps {
		file := snapFileName(doc, epoch)
		if err := syncFile(filepath.Join(d.path, file)); err != nil {
			newWAL.Close()
			return err
		}
		next.Snapshots[doc] = file
	}

	old := d.man
	d.man = next
	if err := d.writeManifest(); err != nil {
		d.man = old
		newWAL.Close()
		os.Remove(filepath.Join(d.path, newWALName))
		return err
	}

	// The new epoch is durable; retire the old one.
	oldWAL := d.wal
	d.wal = newWAL
	oldWAL.Close()
	os.Remove(filepath.Join(d.path, old.WAL))
	for doc, file := range old.Snapshots {
		if next.Snapshots[doc] != file {
			os.Remove(filepath.Join(d.path, file))
		}
	}
	return nil
}

// Close closes the directory's WAL.
func (d *Dir) Close() error {
	if d.wal == nil {
		return nil
	}
	return d.wal.Close()
}

// writeManifest durably replaces the MANIFEST file: write a temp file, sync
// it, rename over the old one, sync the directory.
//
//roxvet:waldurable the manifest writer owns its durability: temp write + fsync + rename + dirsync.
func (d *Dir) writeManifest() error {
	body, err := json.MarshalIndent(d.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(d.path, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(body, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.path, manifestName)); err != nil {
		return err
	}
	return syncDir(d.path)
}

// syncFile fsyncs an already-written file so it is durable before the
// manifest starts referencing it.
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory, making renames within it durable. Platforms
// that reject directory fsync are tolerated.
func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f.Sync()
	return f.Close()
}

func walFileName(epoch uint64) string {
	return fmt.Sprintf("ingest.%d.wal", epoch)
}

func snapFileName(doc string, epoch uint64) string {
	return fmt.Sprintf("%s.%d.roxd", url.PathEscape(doc), epoch)
}
