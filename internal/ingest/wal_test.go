package ingest

import (
	"os"
	"path/filepath"
	"testing"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "ingest.wal")
}

func mustOpen(t *testing.T, path string) (*WAL, []Batch) {
	t.Helper()
	w, batches, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return w, batches
}

func logBatch(t *testing.T, w *WAL, appends ...Append) uint64 {
	t.Helper()
	for _, ap := range appends {
		if err := w.LogAppend(ap); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := w.LogCommit()
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestWALRoundtrip(t *testing.T) {
	path := walPath(t)
	w, batches := mustOpen(t, path)
	if len(batches) != 0 {
		t.Fatalf("fresh wal replayed %d batches", len(batches))
	}
	a1 := Append{Target: "doc.xml", Frag: "f1", XML: "<a>1</a>"}
	a2 := Append{Target: "doc.xml", Frag: "f2", XML: "<b attr=\"x\">two</b>"}
	a3 := Append{Target: "other.xml", Frag: "f3", XML: "<c/>"}
	s1 := logBatch(t, w, a1, a2)
	s2 := logBatch(t, w, a3)
	if s2 <= s1 {
		t.Fatalf("sequence not increasing: %d then %d", s1, s2)
	}
	if w.Pending() != 0 {
		t.Fatalf("pending after commit: %d", w.Pending())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, replayed := mustOpen(t, path)
	defer w2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d batches, want 2", len(replayed))
	}
	if replayed[0].Seq != s1 || replayed[1].Seq != s2 {
		t.Fatalf("sequences %d,%d want %d,%d", replayed[0].Seq, replayed[1].Seq, s1, s2)
	}
	want := [][]Append{{a1, a2}, {a3}}
	for bi, b := range replayed {
		if len(b.Appends) != len(want[bi]) {
			t.Fatalf("batch %d has %d appends, want %d", bi, len(b.Appends), len(want[bi]))
		}
		for ai, ap := range b.Appends {
			if ap != want[bi][ai] {
				t.Fatalf("batch %d append %d = %+v, want %+v", bi, ai, ap, want[bi][ai])
			}
		}
	}
	if w2.Seq() != s2 {
		t.Fatalf("resumed seq %d, want %d", w2.Seq(), s2)
	}
	// Sequence keeps counting after reopen.
	if s3 := logBatch(t, w2, a1); s3 != s2+1 {
		t.Fatalf("next seq %d, want %d", s3, s2+1)
	}
}

func TestWALUncommittedTailDiscarded(t *testing.T) {
	path := walPath(t)
	w, _ := mustOpen(t, path)
	committed := Append{Target: "d", Frag: "f", XML: "<a/>"}
	logBatch(t, w, committed)
	// Appends without a commit: never acknowledged, must vanish on replay.
	if err := w.LogAppend(Append{Target: "d", Frag: "g", XML: "<b/>"}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, replayed := mustOpen(t, path)
	defer w2.Close()
	if len(replayed) != 1 || len(replayed[0].Appends) != 1 || replayed[0].Appends[0] != committed {
		t.Fatalf("replay after uncommitted tail: %+v", replayed)
	}
	// The file must have been truncated back to the commit boundary.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != w2.Size() {
		t.Fatalf("file size %d != wal offset %d", fi.Size(), w2.Size())
	}
}

func TestWALTornTail(t *testing.T) {
	path := walPath(t)
	w, _ := mustOpen(t, path)
	committed := Append{Target: "d", Frag: "f", XML: "<a/>"}
	logBatch(t, w, committed)
	sizeAfterCommit := w.Size()
	logBatch(t, w, Append{Target: "d", Frag: "g", XML: "<b>torn</b>"})
	w.Close()

	// Chop bytes off the end, simulating a crash mid-write of the second
	// batch; every cut length must recover exactly the first batch.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(1); cut < int64(len(full))-sizeAfterCommit; cut++ {
		if err := os.WriteFile(path, full[:int64(len(full))-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, replayed := mustOpen(t, path)
		if len(replayed) != 1 || replayed[0].Appends[0] != committed {
			t.Fatalf("cut %d: replay %+v", cut, replayed)
		}
		if w2.Size() != sizeAfterCommit {
			t.Fatalf("cut %d: not truncated to commit boundary (%d != %d)", cut, w2.Size(), sizeAfterCommit)
		}
		w2.Close()
	}
}

func TestWALChecksumCorruption(t *testing.T) {
	path := walPath(t)
	w, _ := mustOpen(t, path)
	committed := Append{Target: "d", Frag: "f", XML: "<a/>"}
	logBatch(t, w, committed)
	boundary := w.Size()
	logBatch(t, w, Append{Target: "d", Frag: "g", XML: "<b>garbled</b>"})
	w.Close()

	// Flip a payload byte of the second batch: its checksum fails, so replay
	// treats everything from there on as a torn tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[boundary+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, replayed := mustOpen(t, path)
	defer w2.Close()
	if len(replayed) != 1 || replayed[0].Appends[0] != committed {
		t.Fatalf("replay after corruption: %+v", replayed)
	}
	if w2.Size() != boundary {
		t.Fatalf("not truncated to last good commit: %d != %d", w2.Size(), boundary)
	}
}

func TestWALReset(t *testing.T) {
	path := walPath(t)
	w, _ := mustOpen(t, path)
	s1 := logBatch(t, w, Append{Target: "d", Frag: "f", XML: "<a/>"})
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("size after reset: %d", w.Size())
	}
	// Sequence numbers survive the reset so generations stay monotonic.
	s2 := logBatch(t, w, Append{Target: "d", Frag: "g", XML: "<b/>"})
	if s2 != s1+1 {
		t.Fatalf("seq after reset: %d, want %d", s2, s1+1)
	}
	w.Close()

	w2, replayed := mustOpen(t, path)
	defer w2.Close()
	if len(replayed) != 1 || replayed[0].Seq != s2 {
		t.Fatalf("replay after reset: %+v", replayed)
	}
}
