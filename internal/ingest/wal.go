// Package ingest implements the durability half of the live-ingest
// subsystem: a write-ahead log of append operations that lets a serving
// process restart warm. Appends are logged before they are applied to the
// in-memory overlay (xmltree.Appender + index.NewDelta); a commit record
// seals a batch and is fsynced, so after a crash Replay reconstructs exactly
// the committed batches on top of the last packed snapshot. Compaction
// rewrites the snapshot and resets the log.
//
// Record format (little endian):
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// The payload's first byte is the record type; the rest is type-specific.
// An append payload carries the target document name, the fragment label,
// and the fragment XML, each length-prefixed. A commit payload carries the
// batch sequence number.
//
// Torn tails are expected, not errors: a crash mid-write leaves a truncated
// or corrupt final record, and a crash between an append and its commit
// leaves complete but unsealed appends. Replay surfaces only whole,
// checksummed, committed batches and truncates the file back to the last
// commit boundary — an unsealed append was never acknowledged, so discarding
// it is the correct recovery.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Record types. A record type byte outside this set fails Replay loudly
// (before any commit boundary) or is treated as a torn tail (after the last
// one).
const (
	recAppend byte = 1
	recCommit byte = 2
)

// maxWALRecord bounds a single record's payload so a corrupt length prefix
// cannot ask for gigabytes. Fragments are documents-in-flight; 64 MiB is far
// beyond any sane single append.
const maxWALRecord = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Append is one logged append operation: fragment XML destined for a target
// document (or collection shard) of the engine.
type Append struct {
	// Target is the catalog name of the document or collection the fragment
	// is appended to.
	Target string
	// Frag labels the fragment (used in parse errors only).
	Frag string
	// XML is the fragment text: one or more top-level elements.
	XML string
}

// Batch is a committed group of appends, applied atomically at Commit.
type Batch struct {
	// Seq is the commit sequence number, strictly increasing within a log.
	Seq uint64
	// Appends lists the operations in log order.
	Appends []Append
}

// WAL is a write-ahead log backed by a single append-only file. It is not
// safe for concurrent use; the Ingester serializes access.
type WAL struct {
	f    *os.File
	path string

	// off is the current append offset (== file size while healthy).
	off int64
	// seq is the last committed batch sequence number.
	seq uint64
	// pending counts appends logged since the last commit.
	pending int
	// created is when this WAL generation started (opened empty or Reset),
	// reported by Age for observability.
	created time.Time
}

// Open opens (creating if absent) the WAL at path, replays it, and returns
// the log positioned for appending together with the committed batches. The
// file is truncated to the last commit boundary, discarding any torn or
// unsealed tail.
func Open(path string) (*WAL, []Batch, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, created: time.Now()}
	batches, err := w.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, batches, nil
}

// replay scans the file from the start, collecting committed batches,
// leaves the file truncated and positioned at the last commit boundary, and
// records the last committed sequence number.
func (w *WAL) replay() ([]Batch, error) {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var (
		batches   []Batch
		cur       []Append
		off       int64 // scan position
		committed int64 // offset just past the last commit record
	)
	rd := newByteCounter(w.f)
	for {
		payload, err := readRecord(rd)
		if err == io.EOF {
			break // clean end of log
		}
		if err != nil {
			var torn *tornError
			if errors.As(err, &torn) {
				// A torn record is only acceptable as the very tail: the
				// crash interrupted the final write. Anything else is real
				// corruption and must not be silently dropped.
				break
			}
			return nil, fmt.Errorf("ingest: wal %s at offset %d: %w", w.path, off, err)
		}
		off = rd.n
		switch payload[0] {
		case recAppend:
			ap, err := decodeAppend(payload[1:])
			if err != nil {
				return nil, fmt.Errorf("ingest: wal %s at offset %d: %w", w.path, off, err)
			}
			cur = append(cur, ap)
		case recCommit:
			if len(payload) != 1+8 {
				return nil, fmt.Errorf("ingest: wal %s at offset %d: malformed commit record", w.path, off)
			}
			seq := binary.LittleEndian.Uint64(payload[1:])
			if seq <= w.seq {
				return nil, fmt.Errorf("ingest: wal %s at offset %d: commit seq %d not after %d", w.path, off, seq, w.seq)
			}
			w.seq = seq
			if len(cur) > 0 {
				batches = append(batches, Batch{Seq: seq, Appends: cur})
				cur = nil
			}
			committed = off
		default:
			return nil, fmt.Errorf("ingest: wal %s at offset %d: unknown record type %d", w.path, off, payload[0])
		}
	}
	// Truncate the unsealed tail (torn final record and/or uncommitted
	// appends): those operations were never acknowledged.
	if err := w.f.Truncate(committed); err != nil {
		return nil, err
	}
	if _, err := w.f.Seek(committed, io.SeekStart); err != nil {
		return nil, err
	}
	w.off = committed
	return batches, nil
}

// LogAppend writes an append record. It is buffered by the OS only — no
// fsync — because durability is promised at Commit, not per append.
func (w *WAL) LogAppend(ap Append) error {
	payload := encodeAppend(ap)
	if err := w.writeRecord(payload); err != nil {
		return err
	}
	w.pending++
	return nil
}

// LogCommit seals the appends logged since the last commit as one batch and
// fsyncs the file: once it returns, the batch survives a crash. The new
// batch sequence number is returned.
func (w *WAL) LogCommit() (uint64, error) {
	seq := w.seq + 1
	payload := make([]byte, 1+8)
	payload[0] = recCommit
	binary.LittleEndian.PutUint64(payload[1:], seq)
	if err := w.writeRecord(payload); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	w.seq = seq
	w.pending = 0
	return seq, nil
}

// Reset truncates the log to empty after a compaction has durably persisted
// everything the log covered. The commit sequence keeps counting from where
// it was, so generations observed by readers never move backwards.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.off = 0
	w.pending = 0
	w.created = time.Now()
	return nil
}

// Close closes the underlying file. Uncommitted appends are discarded by the
// next Open, exactly as after a crash.
func (w *WAL) Close() error { return w.f.Close() }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Size returns the current log size in bytes (committed prefix plus any
// not-yet-committed appends).
func (w *WAL) Size() int64 { return w.off }

// Age returns how long this WAL generation has existed (since the file was
// opened empty or last Reset) — the staleness bound of the packed snapshot
// underneath it.
func (w *WAL) Age() time.Duration { return time.Since(w.created) }

// Seq returns the last committed batch sequence number.
func (w *WAL) Seq() uint64 { return w.seq }

// Pending returns the number of appends logged since the last commit.
func (w *WAL) Pending() int { return w.pending }

// writeRecord frames payload and appends it to the file. This is the single
// place raw bytes reach the log file; the waldurable analyzer enforces that
// no other code in this package writes to an *os.File directly.
func (w *WAL) writeRecord(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("ingest: wal record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	n, err := w.walWrite(buf)
	w.off += int64(n)
	return err
}

// walWrite performs the raw file write for writeRecord.
//
//roxvet:waldurable
func (w *WAL) walWrite(buf []byte) (int, error) {
	return w.f.Write(buf)
}

// tornError marks a record that ends past EOF or fails its checksum — the
// shape a crash mid-write leaves behind. Replay accepts it only at the tail.
type tornError struct{ reason string }

func (e *tornError) Error() string { return "torn record: " + e.reason }

// byteCounter counts consumed bytes so replay knows each record's end
// offset without a second Seek.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// readRecord reads one framed record, verifying length and checksum. io.EOF
// at a record boundary means a clean end; a short read or checksum mismatch
// inside a record returns *tornError.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, &tornError{"truncated header"}
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxWALRecord {
		return nil, &tornError{fmt.Sprintf("implausible record length %d", n)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, &tornError{"truncated payload"}
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, &tornError{"checksum mismatch"}
	}
	return payload, nil
}

// encodeAppend encodes an append payload: type byte, then the three
// length-prefixed strings.
func encodeAppend(ap Append) []byte {
	buf := make([]byte, 0, 1+12+len(ap.Target)+len(ap.Frag)+len(ap.XML))
	buf = append(buf, recAppend)
	for _, s := range []string{ap.Target, ap.Frag, ap.XML} {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
		buf = append(buf, l[:]...)
		buf = append(buf, s...)
	}
	return buf
}

// decodeAppend decodes the payload after the type byte.
func decodeAppend(b []byte) (Append, error) {
	var out [3]string
	for i := range out {
		if len(b) < 4 {
			return Append{}, errors.New("truncated append record")
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return Append{}, errors.New("truncated append record")
		}
		out[i] = string(b[:n])
		b = b[n:]
	}
	if len(b) != 0 {
		return Append{}, errors.New("trailing bytes in append record")
	}
	return Append{Target: out[0], Frag: out[1], XML: out[2]}, nil
}
