package ops

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/xmltree"
)

// Pairs is the result of a pair-producing join: parallel context/result node
// columns, in context-major order. The fully joined Join Graph relation is
// assembled from edge Pairs.
type Pairs struct {
	C []xmltree.NodeID
	S []xmltree.NodeID
}

// Len returns the number of pairs.
func (p *Pairs) Len() int { return len(p.C) }

func (p *Pairs) append(c, s xmltree.NodeID) {
	p.C = append(p.C, c)
	p.S = append(p.S, s)
}

// Swapped returns the pairs with columns exchanged (used when an edge was
// executed in the reverse direction).
func (p *Pairs) Swapped() Pairs { return Pairs{C: p.S, S: p.C} }

// searchGE returns the first index i with s[i] >= pre.
func searchGE(s []xmltree.NodeID, pre xmltree.NodeID) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= pre })
}

// StepPairs evaluates the structural join Dk/axis(C, S) in pair form: it
// returns every (c, s) with c ∈ C, s ∈ S and s on the given axis of c, in
// C-major order. C and S must be sorted by pre and duplicate-free (the
// canonical vertex-table form). Kind tests are implicit in the axis
// semantics (AxisHolds); name tests come from S being an index lookup result.
//
// This is a cut-off sampled operator (ℓ(OP), Sec 2.3): if limit > 0, result
// generation stops after the context tuple during which the output size
// reached limit. The returned consumed count is the number of context tuples
// fully processed, from which the caller derives the reduction factor
// f = consumed/|C| and the extrapolated full cardinality |r|/f.
//
// The operator is zero-investment with respect to C: per context tuple it
// costs O(log |S|) for the range search plus the produced output, never a
// scan of all of S.
func StepPairs(rec *metrics.Recorder, d *xmltree.Document, axis Axis, C, S []xmltree.NodeID, limit int) (Pairs, int) {
	sw := metrics.Start()
	var out Pairs
	consumed := 0
	for _, c := range C {
		stepOne(d, axis, c, S, &out)
		consumed++
		if limit > 0 && out.Len() >= limit {
			break
		}
	}
	rec.ChargeOp(consumed+out.Len(), sw.Elapsed())
	return out, consumed
}

// stepOne appends all (c, s) pairs for one context node. Attribute context
// nodes only participate in self and attr-owner axes (see AxisHolds).
func stepOne(d *xmltree.Document, axis Axis, c xmltree.NodeID, S []xmltree.NodeID, out *Pairs) {
	if d.Kind(c) == xmltree.KindAttr && axis != AxisSelf && axis != AxisAttrOwner {
		return
	}
	switch axis {
	case AxisDesc, AxisDescSelf:
		lo := c + 1
		if axis == AxisDescSelf {
			lo = c
		}
		hi := c + d.Size(c)
		for i := searchGE(S, lo); i < len(S) && S[i] <= hi; i++ {
			if d.Kind(S[i]) != xmltree.KindAttr {
				out.append(c, S[i])
			}
		}
	case AxisChild:
		hi := c + d.Size(c)
		i := searchGE(S, c+1)
		for i < len(S) && S[i] <= hi {
			s := S[i]
			if d.Kind(s) == xmltree.KindAttr {
				i++
				continue
			}
			if d.Parent(s) == c {
				out.append(c, s)
				i++
				continue
			}
			// s is inside some child subtree; jump past that subtree.
			a := s
			for d.Parent(a) != c {
				a = d.Parent(a)
			}
			i = searchGE(S, a+d.Size(a)+1)
		}
	case AxisParent:
		p := d.Parent(c)
		if p != xmltree.NoNode && contains(S, p) {
			out.append(c, p)
		}
	case AxisAnc, AxisAncSelf:
		if axis == AxisAncSelf && contains(S, c) {
			out.append(c, c)
		}
		for a := d.Parent(c); a != xmltree.NoNode; a = d.Parent(a) {
			if contains(S, a) {
				out.append(c, a)
			}
		}
	case AxisSelf:
		if contains(S, c) {
			out.append(c, c)
		}
	case AxisFoll:
		for i := searchGE(S, c+d.Size(c)+1); i < len(S); i++ {
			if d.Kind(S[i]) != xmltree.KindAttr {
				out.append(c, S[i])
			}
		}
	case AxisPrec:
		for i := 0; i < len(S) && S[i] < c; i++ {
			s := S[i]
			if s+d.Size(s) < c && d.Kind(s) != xmltree.KindAttr && d.Kind(s) != xmltree.KindDoc {
				out.append(c, s)
			}
		}
	case AxisFollSibling:
		p := d.Parent(c)
		if p == xmltree.NoNode {
			return
		}
		hi := p + d.Size(p)
		i := searchGE(S, c+d.Size(c)+1)
		for i < len(S) && S[i] <= hi {
			s := S[i]
			if d.Kind(s) == xmltree.KindAttr {
				i++
				continue
			}
			if d.Parent(s) == p {
				out.append(c, s)
				i++
				continue
			}
			a := s
			for d.Parent(a) != p {
				a = d.Parent(a)
			}
			i = searchGE(S, a+d.Size(a)+1)
		}
	case AxisPrecSibling:
		p := d.Parent(c)
		if p == xmltree.NoNode {
			return
		}
		i := searchGE(S, p+1)
		for i < len(S) && S[i] < c {
			s := S[i]
			if d.Kind(s) == xmltree.KindAttr {
				i++
				continue
			}
			if d.Parent(s) == p {
				out.append(c, s)
				i++
				continue
			}
			a := s
			for d.Parent(a) != p {
				a = d.Parent(a)
			}
			i = searchGE(S, a+d.Size(a)+1)
		}
	case AxisAttribute:
		hi := c + d.Size(c)
		for i := searchGE(S, c+1); i < len(S) && S[i] <= hi; i++ {
			s := S[i]
			if d.Kind(s) != xmltree.KindAttr || d.Parent(s) != c {
				// Attribute nodes of c occupy the pre slots directly
				// after c; the first non-matching node ends the run.
				break
			}
			out.append(c, s)
		}
	case AxisAttrOwner:
		if d.Kind(c) == xmltree.KindAttr {
			if p := d.Parent(c); contains(S, p) {
				out.append(c, p)
			}
		}
	default:
		panic("ops: StepPairs of unknown axis")
	}
}

func contains(s []xmltree.NodeID, n xmltree.NodeID) bool {
	i := searchGE(s, n)
	return i < len(s) && s[i] == n
}

// StaircaseSemi evaluates the structural join in the classic staircase-join
// (semijoin) form of [19]: it returns the distinct S nodes that stand in the
// axis relation to at least one context node, duplicate-free and in document
// order. This form backs plain XPath step evaluation and never multiplies
// cardinalities.
//
// The descendant(-or-self) and following/preceding axes use the staircase
// pruning/boundary tricks that give the single-pass costs of Table 1; the
// remaining axes reduce to pair generation plus sort-unique, whose output is
// bounded by |C|·depth or sibling counts.
func StaircaseSemi(rec *metrics.Recorder, d *xmltree.Document, axis Axis, C, S []xmltree.NodeID) []xmltree.NodeID {
	sw := metrics.Start()
	var out []xmltree.NodeID
	switch axis {
	case AxisDesc, AxisDescSelf:
		// Watermark pruning: nested context ranges are subsumed by their
		// ancestors, so each S position is visited at most once.
		watermark := xmltree.NodeID(0)
		for _, c := range C {
			lo := c + 1
			if axis == AxisDescSelf {
				lo = c
			}
			if lo < watermark {
				lo = watermark
			}
			hi := c + d.Size(c)
			for i := searchGE(S, lo); i < len(S) && S[i] <= hi; i++ {
				if d.Kind(S[i]) != xmltree.KindAttr {
					out = append(out, S[i])
				}
			}
			if hi+1 > watermark {
				watermark = hi + 1
			}
		}
	case AxisFoll:
		// s follows some c iff s.pre > min over non-attribute C of
		// (c.pre + c.size).
		minEnd := xmltree.NodeID(-1)
		for _, c := range C {
			if d.Kind(c) == xmltree.KindAttr {
				continue
			}
			if e := c + d.Size(c); minEnd < 0 || e < minEnd {
				minEnd = e
			}
		}
		if minEnd >= 0 {
			for i := searchGE(S, minEnd+1); i < len(S); i++ {
				if d.Kind(S[i]) != xmltree.KindAttr {
					out = append(out, S[i])
				}
			}
		}
	case AxisPrec:
		// s precedes some c iff s.pre + s.size < max over non-attribute C
		// (the largest such c also has the largest pre).
		maxC := xmltree.NodeID(-1)
		for i := len(C) - 1; i >= 0; i-- {
			if d.Kind(C[i]) != xmltree.KindAttr {
				maxC = C[i]
				break
			}
		}
		if maxC >= 0 {
			for i := 0; i < len(S) && S[i] < maxC; i++ {
				s := S[i]
				if s+d.Size(s) < maxC && d.Kind(s) != xmltree.KindAttr && d.Kind(s) != xmltree.KindDoc {
					out = append(out, s)
				}
			}
		}
	default:
		pairs, _ := StepPairs(nil, d, axis, C, S, 0)
		out = pairs.S
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		out = dedupSorted(out)
	}
	rec.ChargeOp(len(C)+len(out), sw.Elapsed())
	return out
}

func dedupSorted(s []xmltree.NodeID) []xmltree.NodeID {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, n := range s[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// NestedLoopStepPairs is the O(|C|·|S|) reference evaluation of a structural
// join, driven directly by the AxisHolds specification. Table 1 lists the
// nested-loop join as "no sampling allowed" — it lacks the zero-investment
// property — so ROX never samples it; it exists as a correctness oracle and
// a last-resort executor.
func NestedLoopStepPairs(rec *metrics.Recorder, d *xmltree.Document, axis Axis, C, S []xmltree.NodeID) Pairs {
	sw := metrics.Start()
	var out Pairs
	for _, c := range C {
		for _, s := range S {
			if AxisHolds(d, axis, c, s) {
				out.append(c, s)
			}
		}
	}
	rec.ChargeOp(len(C)*len(S)+out.Len(), sw.Elapsed())
	return out
}

// EstimateFull extrapolates the full result cardinality of a cut-off
// execution: outLen results were produced from consumed of total context
// tuples, so the unlimited result is estimated as outLen/f with
// f = consumed/total (Sec 2.3). Returns 0 when nothing was consumed.
func EstimateFull(outLen, consumed, total int) float64 {
	if consumed <= 0 {
		return 0
	}
	return float64(outLen) * float64(total) / float64(consumed)
}
