package ops

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/xmltree"
)

var allAxes = []Axis{
	AxisChild, AxisDesc, AxisDescSelf, AxisParent, AxisAnc, AxisAncSelf,
	AxisFoll, AxisPrec, AxisFollSibling, AxisPrecSibling, AxisSelf,
	AxisAttribute, AxisAttrOwner,
}

// randomDoc builds a random document with elements, texts and attributes.
func randomDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	b := xmltree.NewBuilder("rand.xml")
	names := []string{"a", "b", "c"}
	vals := []string{"1", "2", "3", "7"}
	nodes := 1
	var rec func(depth int)
	rec = func(depth int) {
		for nodes < maxNodes && rng.Intn(4) != 0 {
			if rng.Intn(2) == 0 && depth < 7 {
				b.StartElem(names[rng.Intn(len(names))])
				nodes++
				for rng.Intn(3) == 0 {
					b.Attr("k"+names[rng.Intn(len(names))], vals[rng.Intn(len(vals))])
					nodes++
				}
				rec(depth + 1)
				b.EndElem()
			} else {
				b.Text(vals[rng.Intn(len(vals))])
				nodes++
			}
		}
	}
	b.StartElem("root")
	rec(0)
	b.EndElem()
	return b.MustBuild()
}

// randomSubset picks a sorted duplicate-free random subset of the node ids.
func randomSubset(rng *rand.Rand, d *xmltree.Document, p float64) []xmltree.NodeID {
	var out []xmltree.NodeID
	for i := 0; i < d.Len(); i++ {
		if rng.Float64() < p {
			out = append(out, xmltree.NodeID(i))
		}
	}
	return out
}

func pairsEqual(a, b Pairs) bool {
	if a.Len() != b.Len() {
		return false
	}
	key := func(p Pairs, i int) [2]xmltree.NodeID { return [2]xmltree.NodeID{p.C[i], p.S[i]} }
	as := make([][2]xmltree.NodeID, a.Len())
	bs := make([][2]xmltree.NodeID, b.Len())
	for i := 0; i < a.Len(); i++ {
		as[i], bs[i] = key(a, i), key(b, i)
	}
	less := func(s [][2]xmltree.NodeID) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i][0] != s[j][0] {
				return s[i][0] < s[j][0]
			}
			return s[i][1] < s[j][1]
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestStepPairsMatchesSpec cross-checks the optimized staircase pair join
// against the nested-loop evaluation of AxisHolds on random inputs, for
// every axis.
func TestStepPairsMatchesSpec(t *testing.T) {
	rec := metrics.NewRecorder()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 80)
		C := randomSubset(rng, d, 0.4)
		S := randomSubset(rng, d, 0.5)
		for _, ax := range allAxes {
			got, consumed := StepPairs(rec, d, ax, C, S, 0)
			want := NestedLoopStepPairs(rec, d, ax, C, S)
			if !pairsEqual(got, want) {
				t.Fatalf("seed %d axis %v: StepPairs %d pairs, spec %d pairs", seed, ax, got.Len(), want.Len())
			}
			if consumed != len(C) {
				t.Fatalf("seed %d axis %v: consumed %d, want %d (no limit)", seed, ax, consumed, len(C))
			}
		}
	}
}

// TestStaircaseSemiMatchesSpec checks the semijoin form yields exactly the
// distinct S side of the pair join, in document order.
func TestStaircaseSemiMatchesSpec(t *testing.T) {
	rec := metrics.NewRecorder()
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 90)
		C := randomSubset(rng, d, 0.3)
		S := randomSubset(rng, d, 0.5)
		for _, ax := range allAxes {
			got := StaircaseSemi(rec, d, ax, C, S)
			want := NestedLoopStepPairs(rec, d, ax, C, S).S
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			want = dedupSorted(want)
			if len(got) != len(want) {
				t.Fatalf("seed %d axis %v: semi %d nodes, want %d", seed, ax, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d axis %v: semi[%d]=%d, want %d", seed, ax, i, got[i], want[i])
				}
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("seed %d axis %v: semijoin output not in document order", seed, ax)
			}
		}
	}
}

func TestAxisReverseInvolution(t *testing.T) {
	for _, ax := range allAxes {
		if ax.Reverse().Reverse() != ax {
			t.Errorf("Reverse(Reverse(%v)) = %v", ax, ax.Reverse().Reverse())
		}
	}
}

// TestAxisReverseSemantics: s on axis(c) ⇔ c on reverse-axis(s).
func TestAxisReverseSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDoc(rng, 70)
	for _, ax := range allAxes {
		rev := ax.Reverse()
		for c := 0; c < d.Len(); c++ {
			for s := 0; s < d.Len(); s++ {
				fwd := AxisHolds(d, ax, xmltree.NodeID(c), xmltree.NodeID(s))
				bwd := AxisHolds(d, rev, xmltree.NodeID(s), xmltree.NodeID(c))
				if fwd != bwd {
					t.Fatalf("axis %v: AxisHolds(%d,%d)=%v but reverse %v gives %v", ax, c, s, fwd, rev, bwd)
				}
			}
		}
	}
}

func TestStepPairsCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDoc(rng, 120)
	C := randomSubset(rng, d, 0.6)
	S := randomSubset(rng, d, 0.6)
	rec := metrics.NewRecorder()
	full, _ := StepPairs(rec, d, AxisDesc, C, S, 0)
	if full.Len() < 10 {
		t.Skip("random doc too small for cutoff test")
	}
	limit := full.Len() / 2
	cut, consumed := StepPairs(rec, d, AxisDesc, C, S, limit)
	if cut.Len() < limit {
		t.Errorf("cutoff output %d < limit %d", cut.Len(), limit)
	}
	if consumed >= len(C) {
		t.Errorf("cutoff consumed all %d context tuples", consumed)
	}
	// The cut result must be a prefix of the full result (C-major order).
	for i := 0; i < cut.Len(); i++ {
		if cut.C[i] != full.C[i] || cut.S[i] != full.S[i] {
			t.Fatalf("cut pair %d = (%d,%d), full = (%d,%d)", i, cut.C[i], cut.S[i], full.C[i], full.S[i])
		}
	}
	// Extrapolation should be within a factor-3 of the real size for this
	// front-biased estimate.
	est := EstimateFull(cut.Len(), consumed, len(C))
	if est < float64(full.Len())/3 || est > float64(full.Len())*3 {
		t.Errorf("EstimateFull = %.0f, real %d", est, full.Len())
	}
}

func TestEstimateFull(t *testing.T) {
	if got := EstimateFull(100, 20, 200); got != 1000 {
		t.Errorf("EstimateFull(100,20,200) = %v, want 1000", got)
	}
	if got := EstimateFull(5, 0, 10); got != 0 {
		t.Errorf("EstimateFull with 0 consumed = %v, want 0", got)
	}
}

// valueDoc builds a flat document of <v>value</v> elements whose text values
// come from the given slice.
func valueDoc(name string, values []string) (*xmltree.Document, []xmltree.NodeID) {
	b := xmltree.NewBuilder(name)
	b.StartElem("root")
	for _, v := range values {
		b.StartElem("v")
		b.Text(v)
		b.EndElem()
	}
	b.EndElem()
	d := b.MustBuild()
	var texts []xmltree.NodeID
	for i := 0; i < d.Len(); i++ {
		if d.Kind(xmltree.NodeID(i)) == xmltree.KindText {
			texts = append(texts, xmltree.NodeID(i))
		}
	}
	return d, texts
}

func TestValueJoinAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := []string{"x", "y", "z", "w"}
		mk := func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = vals[rng.Intn(len(vals))]
			}
			return out
		}
		dc, C := valueDoc("c.xml", mk(rng.Intn(25)))
		ds, S := valueDoc("s.xml", mk(rng.Intn(25)))
		ixS := index.New(ds)
		rec := metrics.NewRecorder()

		hash, hc := HashJoinPairs(rec, dc, C, ds, S, 0)
		merge, _ := MergeJoinPairs(rec, dc, C, ds, S, 0)
		nl, nc := NLIndexJoinPairs(rec, dc, C, TextProbe(ixS), 0)
		if hc != len(C) || nc != len(C) {
			return false
		}
		return pairsEqual(hash, merge) && pairsEqual(hash, nl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestValueJoinCutoff(t *testing.T) {
	many := make([]string, 50)
	for i := range many {
		many[i] = "k"
	}
	dc, C := valueDoc("c.xml", many)
	ds, S := valueDoc("s.xml", many)
	ixS := index.New(ds)
	rec := metrics.NewRecorder()
	for _, alg := range []JoinAlg{JoinHash, JoinNLIndex, JoinMerge} {
		got, consumed := ValueJoinPairs(rec, alg, dc, C, ds, S, TextProbe(ixS), 100)
		if got.Len() < 100 {
			t.Errorf("%v: cutoff output %d < 100", alg, got.Len())
		}
		if got.Len() > 150 { // one outer tuple adds 50 pairs at most
			t.Errorf("%v: cutoff output %d overshoots", alg, got.Len())
		}
		if consumed >= len(C) {
			t.Errorf("%v: consumed everything despite cutoff", alg)
		}
		est := EstimateFull(got.Len(), consumed, len(C))
		if est != 2500 {
			t.Errorf("%v: EstimateFull = %v, want 2500 (uniform hit ratio)", alg, est)
		}
	}
}

func TestAttrProbeJoin(t *testing.T) {
	// Join @ref attributes against @id attributes by value.
	d1, err := xmltree.ParseString("a.xml", `<r><e ref="1"/><e ref="2"/><e ref="2"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := xmltree.ParseString("b.xml", `<r><f id="2"/><f id="3"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix1 := index.New(d1)
	ix2 := index.New(d2)
	refs := ix1.AttributesByName("ref")
	rec := metrics.NewRecorder()
	pairs, _ := NLIndexJoinPairs(rec, d1, refs, AttrProbe(ix2, "id"), 0)
	if pairs.Len() != 2 {
		t.Fatalf("join produced %d pairs, want 2", pairs.Len())
	}
	for i := 0; i < pairs.Len(); i++ {
		if d1.Value(pairs.C[i]) != "2" || d2.Value(pairs.S[i]) != "2" {
			t.Errorf("pair %d joins %q with %q", i, d1.Value(pairs.C[i]), d2.Value(pairs.S[i]))
		}
	}
}

func TestSelect(t *testing.T) {
	d, texts := valueDoc("sel.xml", []string{"1", "2", "3", "4"})
	rec := metrics.NewRecorder()
	got := Select(rec, texts, func(n xmltree.NodeID) bool {
		v, _ := d.NumberValue(n)
		return v >= 3
	})
	if len(got) != 2 {
		t.Errorf("Select kept %d, want 2", len(got))
	}
	if rec.CostOf(metrics.PhaseExecute).Tuples != int64(len(texts)) {
		t.Errorf("Select charged %d tuples, want %d", rec.CostOf(metrics.PhaseExecute).Tuples, len(texts))
	}
}

func TestSwapped(t *testing.T) {
	p := Pairs{C: []xmltree.NodeID{1, 2}, S: []xmltree.NodeID{3, 4}}
	s := p.Swapped()
	if s.C[0] != 3 || s.S[0] != 1 || s.C[1] != 4 || s.S[1] != 2 {
		t.Errorf("Swapped = %+v", s)
	}
}

func TestRecorderCharging(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomDoc(rng, 60)
	C := randomSubset(rng, d, 0.5)
	S := randomSubset(rng, d, 0.5)
	rec := metrics.NewRecorder()
	rec.SetPhase(metrics.PhaseSample)
	StepPairs(rec, d, AxisDesc, C, S, 0)
	if rec.CostOf(metrics.PhaseSample).Tuples == 0 {
		t.Errorf("sampling phase got no charge")
	}
	if rec.CostOf(metrics.PhaseExecute).Tuples != 0 {
		t.Errorf("execute phase was charged during sampling")
	}
}
