package ops

import (
	"sort"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/xmltree"
)

// JoinAlg selects a physical equi-join algorithm for value-join edges.
type JoinAlg int

// The relational join algorithms of Table 1.
const (
	// JoinNLIndex probes the inner document's value index once per outer
	// tuple. Zero-investment w.r.t. the outer input — the only value join
	// ROX samples (besides merge join on pre-ordered inners).
	JoinNLIndex JoinAlg = iota
	// JoinHash builds a hash table on the inner input, then probes with the
	// outer. Cost |C|+|S|+|R|; used for bulk execution of materialized
	// edges, never for sampling (the build is an investment in |S|).
	JoinHash
	// JoinMerge sorts both inputs by value and merges. Zero-investment only
	// if the inner is already value-ordered; here the sort cost is charged
	// explicitly.
	JoinMerge
)

// String returns the algorithm name.
func (a JoinAlg) String() string {
	switch a {
	case JoinNLIndex:
		return "nl-index"
	case JoinHash:
		return "hash"
	case JoinMerge:
		return "merge"
	default:
		return "?"
	}
}

// valueJoin joins on the *own* string value of nodes — Join Graph equi-join
// edges always touch text or attribute vertices (Sec 2.1), whose own value is
// their comparison key. Values are compared as strings across documents
// (dictionary ids are per-document and not comparable).

// HashJoinPairs executes C ⋈=val S with a hash table on S. If limit > 0 the
// probe stops after the outer tuple during which the output reached limit;
// consumed reports fully processed outer tuples. Output is C-major ordered.
func HashJoinPairs(rec *metrics.Recorder, dC *xmltree.Document, C []xmltree.NodeID, dS *xmltree.Document, S []xmltree.NodeID, limit int) (Pairs, int) {
	sw := metrics.Start()
	ht := make(map[string][]xmltree.NodeID, len(S))
	for _, s := range S {
		v := dS.Value(s)
		ht[v] = append(ht[v], s)
	}
	var out Pairs
	consumed := 0
	for _, c := range C {
		for _, s := range ht[dC.Value(c)] {
			out.append(c, s)
		}
		consumed++
		if limit > 0 && out.Len() >= limit {
			break
		}
	}
	rec.ChargeOp(consumed+len(S)+out.Len(), sw.Elapsed())
	return out, consumed
}

// NLIndexJoinPairs executes the nested-loop index-lookup join: for each
// outer tuple, all matching inner tuples are fetched through probe — an
// index lookup such as Index.TextEq or Index.AttrEq. Zero-investment w.r.t.
// C. Cut-off semantics as in StepPairs.
func NLIndexJoinPairs(rec *metrics.Recorder, dC *xmltree.Document, C []xmltree.NodeID, probe func(value string) []xmltree.NodeID, limit int) (Pairs, int) {
	sw := metrics.Start()
	var out Pairs
	consumed := 0
	for _, c := range C {
		for _, s := range probe(dC.Value(c)) {
			out.append(c, s)
		}
		consumed++
		if limit > 0 && out.Len() >= limit {
			break
		}
	}
	rec.ChargeOp(consumed+out.Len(), sw.Elapsed())
	return out, consumed
}

// TextProbe returns an index probe for text vertices of ix's document.
func TextProbe(ix *index.Index) func(string) []xmltree.NodeID {
	return ix.TextEq
}

// AttrProbe returns an index probe for @qattr vertices of ix's document.
func AttrProbe(ix *index.Index, qattr string) func(string) []xmltree.NodeID {
	return func(v string) []xmltree.NodeID { return ix.AttrEq(qattr, v) }
}

// MergeJoinPairs executes C ⋈=val S by sorting both sides by value and
// merging. The sort of each side is charged as investment cost; with a
// pre-ordered inner this is min(|C|,|S|)+|R| as in Table 1. Output is in
// value order. Cut-off (limit > 0) stops after completing a value group;
// consumed counts outer tuples processed in value order.
func MergeJoinPairs(rec *metrics.Recorder, dC *xmltree.Document, C []xmltree.NodeID, dS *xmltree.Document, S []xmltree.NodeID, limit int) (Pairs, int) {
	sw := metrics.Start()
	cs := sortByValue(dC, C)
	ss := sortByValue(dS, S)
	var out Pairs
	consumed := 0
	i, j := 0, 0
	for i < len(cs) && j < len(ss) {
		vc, vs := dC.Value(cs[i]), dS.Value(ss[j])
		switch {
		case vc < vs:
			i++
			consumed++
		case vc > vs:
			j++
		default:
			// Emit the full group product for this value.
			jEnd := j
			for jEnd < len(ss) && dS.Value(ss[jEnd]) == vc {
				jEnd++
			}
			for i < len(cs) && dC.Value(cs[i]) == vc {
				for k := j; k < jEnd; k++ {
					out.append(cs[i], ss[k])
				}
				i++
				consumed++
				if limit > 0 && out.Len() >= limit {
					rec.ChargeOp(len(C)+len(S)+out.Len(), sw.Elapsed())
					return out, consumed
				}
			}
			j = jEnd
		}
	}
	consumed = len(cs) // merge ran to completion: every outer tuple was seen
	rec.ChargeOp(len(C)+len(S)+out.Len(), sw.Elapsed())
	return out, consumed
}

func sortByValue(d *xmltree.Document, nodes []xmltree.NodeID) []xmltree.NodeID {
	out := append([]xmltree.NodeID(nil), nodes...)
	sort.SliceStable(out, func(i, j int) bool { return d.Value(out[i]) < d.Value(out[j]) })
	return out
}

// ValueJoinPairs dispatches to the chosen algorithm. For JoinNLIndex the
// caller must supply the inner side's index probe via probe; other
// algorithms ignore it.
func ValueJoinPairs(rec *metrics.Recorder, alg JoinAlg, dC *xmltree.Document, C []xmltree.NodeID, dS *xmltree.Document, S []xmltree.NodeID, probe func(string) []xmltree.NodeID, limit int) (Pairs, int) {
	switch alg {
	case JoinNLIndex:
		return NLIndexJoinPairs(rec, dC, C, probe, limit)
	case JoinHash:
		return HashJoinPairs(rec, dC, C, dS, S, limit)
	case JoinMerge:
		return MergeJoinPairs(rec, dC, C, dS, S, limit)
	default:
		panic("ops: unknown join algorithm")
	}
}

// Select filters a node sequence with an arbitrary predicate, the scan σ of
// Table 1 (cost |C|). Order is preserved.
func Select(rec *metrics.Recorder, nodes []xmltree.NodeID, keep func(xmltree.NodeID) bool) []xmltree.NodeID {
	sw := metrics.Start()
	out := make([]xmltree.NodeID, 0, len(nodes))
	for _, n := range nodes {
		if keep(n) {
			out = append(out, n)
		}
	}
	rec.ChargeOp(len(nodes), sw.Elapsed())
	return out
}
