// Package ops implements the physical operators ROX evaluates Join Graphs
// with (Table 1 of the paper): the staircase structural joins for every XPath
// axis, value-based equi-joins (merge, hash, nested-loop index lookup),
// selections, and the cut-off sampled execution ℓ(OP) of Sec 2.3.
//
// All operators that ROX samples have the zero-investment property with
// respect to their context input C: their cost is linear in the consumed
// prefix of C (plus produced output), never in the size of the other input,
// which is reached through indices, binary search, or ordered scans.
package ops

import (
	"fmt"

	"repro/internal/xmltree"
)

// Axis is an XPath axis, the label of a step edge in the Join Graph.
type Axis int

// The axes of the staircase join family (Sec 2.2), plus the attribute axis
// and its reverse (attribute → owner element), which the paper's Join Graphs
// need for @-annotated vertices.
const (
	AxisChild Axis = iota
	AxisDesc
	AxisDescSelf
	AxisParent
	AxisAnc
	AxisAncSelf
	AxisFoll
	AxisPrec
	AxisFollSibling
	AxisPrecSibling
	AxisSelf
	AxisAttribute
	AxisAttrOwner
)

// String returns the XPath name of the axis.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDesc:
		return "descendant"
	case AxisDescSelf:
		return "descendant-or-self"
	case AxisParent:
		return "parent"
	case AxisAnc:
		return "ancestor"
	case AxisAncSelf:
		return "ancestor-or-self"
	case AxisFoll:
		return "following"
	case AxisPrec:
		return "preceding"
	case AxisFollSibling:
		return "following-sibling"
	case AxisPrecSibling:
		return "preceding-sibling"
	case AxisSelf:
		return "self"
	case AxisAttribute:
		return "attribute"
	case AxisAttrOwner:
		return "attr-owner"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Short returns the abbreviated step syntax used in Join Graph rendering
// ("/", "//", "/@", ...).
func (a Axis) Short() string {
	switch a {
	case AxisChild:
		return "/"
	case AxisDesc:
		return "//"
	case AxisAttribute:
		return "/@"
	default:
		return a.String()
	}
}

// Reverse returns the inverse axis: s ∈ axis(c) ⇔ c ∈ axis.Reverse()(s).
// The ROX optimizer uses this to execute a step edge in either direction
// (Sec 2.1: "the algorithm may very well decide to execute the step in the
// reverse direction").
func (a Axis) Reverse() Axis {
	switch a {
	case AxisChild:
		return AxisParent
	case AxisParent:
		return AxisChild
	case AxisDesc:
		return AxisAnc
	case AxisAnc:
		return AxisDesc
	case AxisDescSelf:
		return AxisAncSelf
	case AxisAncSelf:
		return AxisDescSelf
	case AxisFoll:
		return AxisPrec
	case AxisPrec:
		return AxisFoll
	case AxisFollSibling:
		return AxisPrecSibling
	case AxisPrecSibling:
		return AxisFollSibling
	case AxisSelf:
		return AxisSelf
	case AxisAttribute:
		return AxisAttrOwner
	case AxisAttrOwner:
		return AxisAttribute
	default:
		panic(fmt.Sprintf("ops: Reverse of unknown axis %d", int(a)))
	}
}

// AxisHolds is the semantic specification of every axis: it reports whether
// s lies on axis a of context node c in document d. The staircase joins are
// optimized equivalents; tests cross-check them against this predicate, and
// it backs the nested-loop fallback join.
//
// Attribute nodes participate only in the self, attribute and attr-owner
// axes. XPath itself is asymmetric here (an attribute has a parent, yet is
// not its parent's child); ROX needs every axis to be the exact inverse of
// its Reverse so that a step edge can be executed in either direction, so
// attributes are uniformly excluded from the document-order axes and
// addressed through AxisAttribute/AxisAttrOwner instead — which is also how
// the Join Graph compiler emits @-steps.
func AxisHolds(d *xmltree.Document, a Axis, c, s xmltree.NodeID) bool {
	attr := func(n xmltree.NodeID) bool { return d.Kind(n) == xmltree.KindAttr }
	switch a {
	case AxisChild:
		return d.Parent(s) == c && !attr(s)
	case AxisDesc:
		return d.IsAncestorOf(c, s) && !attr(s)
	case AxisDescSelf:
		return (s == c || d.IsAncestorOf(c, s)) && !attr(s)
	case AxisParent:
		return d.Parent(c) == s && !attr(c)
	case AxisAnc:
		return d.IsAncestorOf(s, c) && !attr(c)
	case AxisAncSelf:
		return (s == c || d.IsAncestorOf(s, c)) && !attr(c) && !attr(s)
	case AxisFoll:
		return s > c+d.Size(c) && !attr(s) && !attr(c)
	case AxisPrec:
		return s < c && s+d.Size(s) < c && !attr(s) && !attr(c) &&
			d.Kind(s) != xmltree.KindDoc
	case AxisFollSibling:
		return d.Parent(s) == d.Parent(c) && s > c && !attr(s) && !attr(c)
	case AxisPrecSibling:
		return d.Parent(s) == d.Parent(c) && s < c && !attr(s) && !attr(c)
	case AxisSelf:
		return s == c
	case AxisAttribute:
		return d.Parent(s) == c && d.Kind(s) == xmltree.KindAttr
	case AxisAttrOwner:
		return d.Kind(c) == xmltree.KindAttr && d.Parent(c) == s
	default:
		panic(fmt.Sprintf("ops: AxisHolds of unknown axis %d", int(a)))
	}
}
