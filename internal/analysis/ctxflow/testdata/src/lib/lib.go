// Package lib is library code: fresh context roots are banned here.
package lib

import "context"

func mint() {
	ctx := context.Background() // want `context.Background\(\) in library code severs cancellation`
	_ = ctx
}

func todo() error {
	_ = context.TODO() // want `context.TODO\(\) in library code`
	return nil
}

func threaded(ctx context.Context) {
	sub := context.Background() // want `already has a ctx parameter`
	_, _ = sub, ctx
}

func nested(ctx context.Context) {
	go func() {
		_ = context.Background() // want `already has a ctx parameter`
	}()
	_ = ctx
}

// legacyRoot is the blessed escape hatch for no-ctx convenience wrappers.
//
//roxvet:ctxroot compatibility wrapper for callers without a ctx
func legacyRoot() {
	_ = context.Background() // no diagnostic: annotated root
}

// Serve is exported with a misplaced ctx.
func Serve(name string, ctx context.Context) { // want `context.Context must be the first parameter of exported Serve`
	_, _ = name, ctx
}

// Run has ctx first: the canonical signature.
func Run(ctx context.Context, name string) {
	_, _ = ctx, name
}

var (
	_ = mint
	_ = todo
	_ = threaded
	_ = nested
	_ = legacyRoot
)
