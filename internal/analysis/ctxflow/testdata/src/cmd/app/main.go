// Command app may mint context roots: main owns the process lifecycle.
package main

import "context"

func main() {
	ctx := context.Background() // no diagnostic: package main is a root
	work(ctx)
}

func work(ctx context.Context) {
	_ = ctx
}
