// Package ctxflow enforces the context-propagation discipline the serving
// and (future) distributed layers depend on: cancellation must flow from the
// caller through every execution path, so library code never mints its own
// root context. context.Background()/TODO() are reserved for package main,
// tests, and functions explicitly annotated as roots with //roxvet:ctxroot —
// the legacy no-ctx convenience wrappers. A function that already receives a
// ctx must thread it, and exported APIs taking a ctx take it first. See the
// "Invariants and static enforcement" section of DESIGN.md.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags fresh context roots in library code and ctx-parameter
// style violations.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "ctxflow reports context.Background()/context.TODO() outside package main, " +
		"_test.go files and //roxvet:ctxroot-annotated functions; calls that mint a " +
		"fresh root inside a function that already has a ctx parameter; and exported " +
		"functions whose context.Context parameter is not first.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		isTest := analysis.IsTestFile(pass.Fset, f.Pos())
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFirst(pass, fd)
			root := isMain || isTest || analysis.FuncAnnotated(fd, "ctxroot")
			visit(pass, fd.Body, hasCtxParam(pass.TypesInfo, fd.Type), root)
		}
	}
	return nil
}

// visit walks a function body flagging fresh context roots. hasCtx tracks
// whether the nearest enclosing function (declaration or literal) receives a
// context.Context; root is inherited by nested literals — a closure inside an
// annotated root is part of that root.
func visit(pass *analysis.Pass, n ast.Node, hasCtx, root bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			visit(pass, n.Body, hasCtx || hasCtxParam(pass.TypesInfo, n.Type), root)
			return false
		case *ast.CallExpr:
			name, ok := contextRootCall(pass.TypesInfo, n)
			if !ok {
				return true
			}
			switch {
			case hasCtx:
				pass.Reportf(n.Pos(),
					"context.%s() inside a function that already has a ctx parameter: propagate the caller's ctx instead of minting a fresh root", name)
			case !root:
				pass.Reportf(n.Pos(),
					"context.%s() in library code severs cancellation: accept a ctx from the caller, or annotate a deliberate root with //roxvet:ctxroot <reason>", name)
			}
		}
		return true
	})
}

// contextRootCall reports whether the call is context.Background or
// context.TODO, resolved through the type checker so import renames cannot
// hide it.
func contextRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return analysis.IsNamedType(t, "context", "Context")
}

// hasCtxParam reports whether the function type declares a context.Context
// parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// checkCtxFirst reports an exported function whose context.Context parameter
// is not the first parameter (after the receiver) — the position every
// caller and the rest of the codebase expect.
func checkCtxFirst(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		isCtx := isContextType(pass.TypesInfo.TypeOf(field.Type))
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of exported %s", fd.Name.Name)
			return
		}
		idx += n
	}
}
