package rowsclose_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rowsclose"
)

func TestRowsClose(t *testing.T) {
	analysistest.Run(t, "testdata", rowsclose.Analyzer, "rc")
}
