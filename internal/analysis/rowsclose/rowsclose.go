// Package rowsclose enforces the rox.Rows cursor lifecycle: every cursor
// obtained from Execute (or any other *rox.Rows-returning call) must be
// finished — Close, the self-closing All iterator, or an escape that hands
// ownership elsewhere — on every control-flow path, or shard goroutines and
// pool admission slots leak until the GC's cleanup fires. The check is a
// lostcancel-style pass over a per-function CFG (internal/analysis/cfg):
// from each acquisition it walks all paths to the function exit and reports
// the ones no finishing use dominates. Error-return paths from the same
// acquisition (`rows, err := ...; if err != nil { return err }`) are exempt —
// the cursor is nil there. See the "Invariants and static enforcement"
// section of DESIGN.md.
package rowsclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer flags *rox.Rows values that may reach the end of their function
// without Close/All or an ownership-transferring escape.
var Analyzer = &analysis.Analyzer{
	Name: "rowsclose",
	Doc: "rowsclose reports rox.Rows cursors that are not finished on every path: " +
		"each Execute result must reach Close or All (or escape by return, argument, " +
		"assignment or channel send) before the function exits; defer rows.Close() " +
		"right after the error check is the canonical form.",
	Run: run,
}

// finishers are the Rows methods that end the stream and release resources;
// every other method (Next, Item, Err, Stats) consumes without finishing.
var finishers = map[string]bool{"Close": true, "All": true, "collect": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, body := range functionBodies(f) {
			checkBody(pass, body)
		}
	}
	return nil
}

// functionBodies returns every function body in the file: declarations and
// literals, each analyzed with its own CFG.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// def is one cursor acquisition: the statement, the cursor variable, and the
// error variable paired with it (nil when discarded or absent).
type def struct {
	stmt ast.Stmt
	call *ast.CallExpr
	v    types.Object
	err  types.Object
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var defs []*def
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // nested literals get their own pass
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if d := rowsDef(pass.TypesInfo, st); d != nil {
				if d.v == nil {
					pass.Reportf(st.Pos(), "rox.Rows from %s assigned to the blank identifier: the cursor can never be Closed", callName(d.call))
					return true
				}
				defs = append(defs, d)
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && returnsRows(pass.TypesInfo, call) {
				pass.Reportf(st.Pos(), "rox.Rows result of %s discarded: the cursor is never Closed", callName(call))
			}
		}
		return true
	})
	if len(defs) == 0 {
		return
	}
	g := cfg.New(body)
	for _, d := range defs {
		site, ok := g.Site[d.stmt]
		if !ok {
			continue // unreachable or inside a construct the CFG elides
		}
		if leaks(pass.TypesInfo, g, site, d) {
			pass.Reportf(d.call.Pos(),
				"rows returned by %s may reach the end of the function without Close or All on some path; defer rows.Close() after the error check", callName(d.call))
		}
	}
}

// rowsDef recognizes `rows, err := ...` / `rows := ...` acquisitions whose
// single RHS call yields a *rox.Rows (possibly in a (rows, error) pair).
func rowsDef(info *types.Info, st *ast.AssignStmt) *def {
	if len(st.Rhs) != 1 {
		return nil
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || !returnsRows(info, call) {
		return nil
	}
	d := &def{stmt: st, call: call}
	if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
		d.v = info.ObjectOf(id)
	}
	if len(st.Lhs) > 1 {
		if id, ok := st.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			d.err = info.ObjectOf(id)
		}
	}
	if d.v == nil && len(st.Lhs) > 0 {
		if _, ok := st.Lhs[0].(*ast.Ident); !ok {
			// Assigned into a field/slot: ownership escapes to that storage.
			return nil
		}
	}
	return d
}

// returnsRows reports whether the call's (first) result is *rox.Rows.
func returnsRows(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(0).Type()
	}
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n := analysis.NamedOf(ptr.Elem())
	return n != nil && n.Obj().Name() == "Rows" && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "rox"
}

func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return "the call"
}

// leaks walks every CFG path from the acquisition site and reports whether
// any reaches the function exit with the cursor still live.
func leaks(info *types.Info, g *cfg.Graph, site cfg.Pos, d *def) bool {
	visited := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block, from int) bool
	walk = func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			if nodeFinishes(info, b.Nodes[i], d) {
				return false
			}
		}
		if b == g.Exit || len(b.Succs) == 0 {
			return true
		}
		for _, s := range b.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(site.Block, site.Index+1)
}

// nodeFinishes reports whether executing this node finishes the cursor's
// path: a finishing method call or an ownership escape of the cursor, or an
// error-path exit through the paired error variable.
func nodeFinishes(info *types.Info, n ast.Node, d *def) bool {
	finished := false
	ast.Inspect(n, func(n ast.Node) bool {
		if finished {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// `rows == nil` / `rows != nil` checks are neutral.
			if (n.Op == token.EQL || n.Op == token.NEQ) && (isNil(n.X) || isNil(n.Y)) {
				return false
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && info.ObjectOf(id) == d.v && d.v != nil {
				if finishers[n.Sel.Name] {
					finished = true
				}
				// Neutral consumption (Next/Item/...) and unknown methods
				// keep the path open; either way don't re-inspect the ident.
				return false
			}
		case *ast.Ident:
			if d.v != nil && info.ObjectOf(n) == d.v {
				// Any bare appearance — argument, return value, RHS of an
				// assignment, channel send, composite literal — transfers
				// ownership out of this function's responsibility.
				finished = true
			}
		case *ast.ReturnStmt:
			if d.err != nil && usesObj(info, n, d.err) {
				finished = true // error-path return: the cursor is nil here
			}
		case *ast.CallExpr:
			// Consuming the paired error in a call — writeError(..., err),
			// t.Fatal(err), panic(err), fmt.Errorf("...%w", err) — marks the
			// error branch, where the cursor is nil. The `err != nil` guard
			// itself is a bare comparison and stays neutral (handled above),
			// so only the branch that handles the error is excused.
			if d.err != nil && usesObj(info, n, d.err) {
				finished = true
			}
		}
		return !finished
	})
	return finished
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// usesObj reports whether the node references the object.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}
