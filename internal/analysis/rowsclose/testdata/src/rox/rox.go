// Package rox is a testdata stand-in exposing the Rows cursor surface the
// analyzer matches on (package name "rox", type name "Rows").
package rox

// Rows is a streaming cursor.
type Rows struct{}

func (r *Rows) Next() bool             { return false }
func (r *Rows) Item() string           { return "" }
func (r *Rows) Err() error             { return nil }
func (r *Rows) Close() error           { return nil }
func (r *Rows) All() ([]string, error) { return nil, nil }

// Execute yields a cursor and an error, like the engine's Execute.
func Execute(q string) (*Rows, error) { return &Rows{}, nil }

// Stream yields just a cursor.
func Stream(q string) *Rows { return &Rows{} }
