// Package rc exercises the rowsclose lifecycle analyzer.
package rc

import "rox"

// leak exhausts the cursor but never finishes it on the success path.
func leak(q string) error {
	rows, err := rox.Execute(q) // want `rows returned by Execute may reach the end of the function without Close or All`
	if err != nil {
		return err
	}
	for rows.Next() {
	}
	return rows.Err()
}

// closed is the canonical form: defer Close right after the error check.
func closed(q string) error {
	rows, err := rox.Execute(q)
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
	}
	return rows.Err()
}

// drained finishes through the self-closing All.
func drained(q string) ([]string, error) {
	rows, err := rox.Execute(q)
	if err != nil {
		return nil, err
	}
	return rows.All()
}

// escapes hands the cursor to the caller: their lifecycle now.
func escapes(q string) *rox.Rows {
	rows := rox.Stream(q)
	return rows
}

// errConsumedInCall is the server shape: the error branch hands err to a
// helper and bare-returns; the cursor is nil there.
func errConsumedInCall(q string) {
	rows, err := rox.Execute(q)
	if err != nil {
		logf("execute: %v", err)
		return
	}
	defer rows.Close()
}

// blank discards the cursor at birth.
func blank(q string) {
	_, _ = rox.Execute(q) // want `assigned to the blank identifier`
}

// discard drops the result expression on the floor.
func discard(q string) {
	rox.Stream(q) // want `result of Stream discarded`
}

// conditional closes on one path only.
func conditional(q string, keep bool) {
	rows := rox.Stream(q) // want `may reach the end of the function without Close or All`
	if keep {
		rows.Close()
	}
}

func logf(format string, args ...any) {}

var (
	_ = leak
	_ = closed
	_ = drained
	_ = escapes
	_ = errConsumedInCall
	_ = blank
	_ = discard
	_ = conditional
)
