// Package analysis is a dependency-free re-implementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs: it
// defines the Analyzer/Pass/Diagnostic vocabulary, runs analyzers over
// type-checked packages, and applies the `//roxvet:ignore <reason>`
// suppression directive uniformly across every entry point (standalone
// roxvet, `go vet -vettool`, and the analysistest golden harness).
//
// The engine's load-bearing invariants — immutable published catalogs,
// context propagation, cursor lifecycles, graph/tail isolation, deterministic
// iteration and exact float folding — are enforced mechanically by the
// analyzers under internal/analysis/...; see the "Invariants and static
// enforcement" section of DESIGN.md for the invariant-to-analyzer map and the
// escape-hatch policy.
//
// The x/tools module is deliberately not imported: this repository builds
// with the standard library only, so the framework (package loading via
// `go list -export`, the vet tool protocol in unitchecker.go, the golden
// harness in analysistest) is implemented from go/ast, go/types and the go
// toolchain already shipped in the build image.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name, a documentation string, and
// the function that inspects a package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package through pass and reports findings via
	// pass.Report/Reportf. A non-nil error aborts the whole run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	p.report(d)
}

// Reportf records one finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the analyzed package, the
// analyzer that produced it, and a human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Finding is a Diagnostic with its position resolved against the file set —
// the stable, printable form used by every front end.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line:col form go vet
// users expect.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map analyzers rely on populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunPackage applies every analyzer to pkg, filters the findings through the
// `//roxvet:ignore <reason>` directives of the package's files, appends a
// diagnostic for each malformed (reason-less) directive, and returns the
// surviving findings sorted by position. This is the single choke point all
// three front ends (standalone, vettool, analysistest) share, so directive
// semantics cannot drift between them.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	ig := scanIgnores(pkg.Fset, pkg.Files)
	var out []Finding
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if ig.suppressed(pos) {
			continue
		}
		out = append(out, Finding{Position: pos, Analyzer: d.Analyzer, Message: d.Message})
	}
	out = append(out, ig.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// PathHasSuffix reports whether a package import path is the named path or
// ends with it as a whole path segment ("internal/plan" matches both
// "repro/internal/plan" and a test fixture's "internal/plan", but never
// "notinternal/plan-b").
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// Deref peels pointers off a type.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// NamedOf returns the named type behind t (after peeling pointers and
// aliases), or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := Deref(types.Unalias(t)).(*types.Named)
	return n
}

// IsNamedType reports whether t (after pointers/aliases) is the named type
// `name` declared in a package whose import path matches pkgSuffix per
// PathHasSuffix.
func IsNamedType(t types.Type, pkgSuffix, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && PathHasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// FuncAnnotated reports whether the function declaration carries the
// `//roxvet:<marker>` directive in its doc comment (directive comments are
// invisible in rendered godoc, like //go:noinline).
func FuncAnnotated(fn *ast.FuncDecl, marker string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	want := "roxvet:" + marker
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
