package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// This file is the standalone front end's package loader: it shells out to
// the go toolchain (`go list -export -deps -json`) to enumerate the target
// packages and obtain compiled export data for every dependency, then
// type-checks each target from source. Export-data import is how the real
// toolchain composes too — since Go 1.20 there are no pre-compiled .a files
// under GOROOT, so the classic importer.Default() cannot resolve even
// "fmt"; routing every import through the build cache's export files is the
// only dependency-free way to type-check a module offline.

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiled export-data files, with an
// optional import-path rewrite map (vendoring, test variants).
type exportImporter struct {
	gc        types.ImporterFrom
	importMap map[string]string
}

// newExportImporter builds an importer over path -> export-file bindings.
func newExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:        importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		importMap: importMap,
	}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := ei.importMap[path]; ok {
		path = mapped
	}
	return ei.gc.ImportFrom(path, dir, 0)
}

// parseDir parses the named files of one package directory with comments.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkFiles type-checks one package's parsed files.
func checkFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load enumerates the packages matching the patterns (relative to dir; empty
// patterns default to "./...") and returns them parsed and type-checked,
// ready for RunPackage. Dependencies resolve through export data, so only
// the matched packages themselves are re-parsed from source. Test files are
// not included — the `go vet -vettool` path covers those.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	lps, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, lp := range lps {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range lps {
		if lp.DepOnly || lp.Name == "" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files, err := parseDir(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, lp.ImportPath, files, newExportImporter(fset, exports, lp.ImportMap))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
