// Package fsumonly guards the bit-for-bit determinism of the aggregation
// merge algebra: float64 addition is not associative, so a raw `sum += x`
// loop in a fold or merge path makes the result depend on how rows were
// grouped across shards — the exact property the scatter gather must not
// have. All floating-point accumulation in fold/merge code belongs in
// plan.AggState, whose exact (Shewchuk expansion) summation is
// grouping-invariant; everything else either uses it or carries an explicit
// //roxvet:fsum justification. See the "Invariants and static enforcement"
// section of DESIGN.md.
package fsumonly

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags raw float64 accumulation loops in fold/merge paths outside
// plan.AggState.
var Analyzer = &analysis.Analyzer{
	Name: "fsumonly",
	Doc: "fsumonly reports raw float64 += (or x = x + e) accumulation inside loops " +
		"of fold/merge/gather functions outside plan.AggState: non-associative float " +
		"addition makes merged results depend on shard grouping. Accumulate through " +
		"plan.AggState's exact summation, or annotate a deliberate exception with " +
		"//roxvet:fsum <reason>.",
	Run: run,
}

// foldyNames marks function names that are part of fold/merge paths.
var foldyNames = []string{"fold", "merge", "sum", "accum", "gather", "agg"}

// scopePkgNames are the packages whose fold/merge paths are covered: the
// public engine (rox), the execution layer (plan) and the operator library
// (ops).
var scopePkgNames = map[string]bool{"rox": true, "plan": true, "ops": true}

func run(pass *analysis.Pass) error {
	if !scopePkgNames[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue // tests may sum floats to assert against
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !foldyName(fd.Name.Name) {
				continue
			}
			if receiverIsAggState(pass.TypesInfo, fd) || analysis.FuncAnnotated(fd, "fsum") {
				continue
			}
			checkLoops(pass, fd.Body)
		}
	}
	return nil
}

func foldyName(name string) bool {
	lower := strings.ToLower(name)
	for _, f := range foldyNames {
		if strings.Contains(lower, f) {
			return true
		}
	}
	return false
}

// receiverIsAggState reports whether the method's receiver is plan.AggState
// — the one sanctioned home of float accumulation.
func receiverIsAggState(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return analysis.IsNamedType(info.TypeOf(fd.Recv.List[0].Type), "internal/plan", "AggState") ||
		analysis.IsNamedType(info.TypeOf(fd.Recv.List[0].Type), "plan", "AggState")
}

// checkLoops flags float64 accumulation statements inside for/range bodies.
func checkLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			checkAccum(pass, n.Body)
		case *ast.RangeStmt:
			checkAccum(pass, n.Body)
		}
		return true
	})
}

func checkAccum(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch st.Tok {
		case token.ADD_ASSIGN:
			if len(st.Lhs) == 1 && isFloat64(pass.TypesInfo, st.Lhs[0]) {
				pass.Reportf(st.Pos(),
					"raw float64 accumulation in a fold/merge path: += is not associative, so the merged result depends on shard grouping; use plan.AggState's exact summation (or //roxvet:fsum <reason>)")
			}
		case token.ASSIGN:
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 && isFloat64(pass.TypesInfo, st.Lhs[0]) &&
				selfAddition(pass.TypesInfo, st.Lhs[0], st.Rhs[0]) {
				pass.Reportf(st.Pos(),
					"raw float64 accumulation in a fold/merge path: x = x + e is not associative, so the merged result depends on shard grouping; use plan.AggState's exact summation (or //roxvet:fsum <reason>)")
			}
		}
		return true
	})
}

func isFloat64(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// selfAddition reports whether rhs is an addition chain with lhs as one of
// its operands (x = x + e, x = e + x, x = x + e1 + e2).
func selfAddition(info *types.Info, lhs, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	lobj := exprObj(info, lhs)
	if lobj == nil {
		return false
	}
	var hasOperand func(e ast.Expr) bool
	hasOperand = func(e ast.Expr) bool {
		if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ADD {
			return hasOperand(b.X) || hasOperand(b.Y)
		}
		return exprObj(info, e) == lobj
	}
	return hasOperand(bin.X) || hasOperand(bin.Y)
}

// exprObj resolves a plain identifier operand to its object (selectors and
// index expressions return nil: aliasing through them is out of scope).
func exprObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}
