// Package plan is a testdata stand-in for the aggregation layer: AggState is
// the one sanctioned home of raw float accumulation.
package plan

// AggState accumulates exactly (stand-in for the Shewchuk expansion).
type AggState struct {
	total float64
	parts []float64
}

// Add folds one value into the state.
func (a *AggState) Add(x float64) {
	a.parts = append(a.parts, x)
}

// merge folds another state in: exempt by receiver even though it raw-sums.
func (a *AggState) merge(o *AggState) {
	for _, p := range o.parts {
		a.total += p // no diagnostic: AggState owns float accumulation
	}
}

// mergeTotals is a fold path accumulating raw float64s.
func mergeTotals(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x // want `raw float64 accumulation in a fold/merge path`
	}
	return total
}

// foldPairs uses the x = x + e spelling of the same mistake.
func foldPairs(xs, ys []float64) float64 {
	var s float64
	for i := range xs {
		s = s + xs[i] + ys[i] // want `raw float64 accumulation in a fold/merge path`
	}
	return s
}

// sumCounts accumulates integers: only floats are non-associative.
func sumCounts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// scaleAll is not a fold/merge path by name: out of scope.
func scaleAll(xs []float64, f float64) {
	for i := range xs {
		xs[i] += f
	}
}

// sumResidual is a deliberate, justified exception.
//
//roxvet:fsum residual term is order-independent by construction here
func sumResidual(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

var (
	_ = mergeTotals
	_ = foldPairs
	_ = sumCounts
	_ = scaleAll
	_ = sumResidual
)
