package fsumonly_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fsumonly"
)

func TestFsumOnly(t *testing.T) {
	analysistest.Run(t, "testdata", fsumonly.Analyzer, "repro/internal/plan")
}
