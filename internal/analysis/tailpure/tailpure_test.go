package tailpure_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tailpure"
)

func TestTailPure(t *testing.T) {
	analysistest.Run(t, "testdata", tailpure.Analyzer, "repro/internal/joingraph", "fp")
}
