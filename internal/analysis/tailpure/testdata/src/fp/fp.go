// Package fp exercises the tail-invariance of fingerprint computations:
// outside joingraph, tail reads are fine anywhere except under a function
// whose name says Fingerprint.
package fp

import "repro/internal/plan"

// Fingerprint hashes the graph shape; reading the tail would stop cached
// plans transferring across order/agg/limit changes.
func Fingerprint(q *plan.Query) string {
	_ = q.Tail // want `fingerprint input reads tail field Query.Tail`
	return q.Name
}

// graphFingerprint is matched by name anywhere in the function's body.
func graphFingerprint(q *plan.Query) int {
	if q.Tail.Limit > 0 { // want `fingerprint input reads tail field Query.Tail` `fingerprint input reads tail field Tail.Limit`
		return 1
	}
	return 0
}

// describe is not a fingerprint: tail reads are the normal case.
func describe(q *plan.Query) int {
	return q.Tail.Limit
}

var (
	_ = graphFingerprint
	_ = describe
)
