// Package plan is a testdata stand-in carrying tail state.
package plan

// Tail is the post-graph spec: ordering, aggregation, window.
type Tail struct {
	Order string
	Agg   string
	Limit int
}

// Query pairs a graph shape with its tail.
type Query struct {
	Name string
	Tail Tail
}
