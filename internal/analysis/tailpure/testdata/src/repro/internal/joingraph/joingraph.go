// Package joingraph is a testdata stand-in that crosses the graph/tail
// isolation line in both forbidden ways: importing the plan package and
// referencing tail concepts.
package joingraph

import "repro/internal/plan" // want `joingraph must not import repro/internal/plan`

// Graph should be tail-free — this one smuggles tail state in.
type Graph struct {
	Edges []string
	Spec  plan.Tail // want `joingraph must not reference tail concept Tail`
}

// OrderSpec re-declares a tail concept inside the graph layer.
type OrderSpec struct{} // want `joingraph must not reference tail concept OrderSpec`
