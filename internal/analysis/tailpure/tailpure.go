// Package tailpure enforces the join-graph/tail isolation line from XQuery
// Join Graph Isolation: the join graph is what run-time optimization orders,
// and the tail (order by, aggregates, limit windows) is what runs after it —
// so internal/joingraph must never import or reference tail concepts, and
// fingerprint computations must never read tail fields. That isolation is
// what makes joingraph.Fingerprint tail-invariant, which is what lets one
// cached plan serve every ordering/aggregation/window of the same graph
// shape. See the "Invariants and static enforcement" section of DESIGN.md.
package tailpure

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags tail references inside internal/joingraph and tail-field
// reads inside fingerprint computations anywhere.
var Analyzer = &analysis.Analyzer{
	Name: "tailpure",
	Doc: "tailpure reports violations of the graph/tail isolation line: the " +
		"internal/joingraph package must not import internal/plan or internal/xquery " +
		"nor reference tail concepts (Tail, OrderSpec, AggSpec, LimitSpec), and " +
		"functions computing fingerprints must not read tail fields — fingerprints " +
		"must stay tail-invariant so cached plans transfer across tails.",
	Run: run,
}

// tailIdents are the tail-spec type names whose very mention inside
// joingraph crosses the isolation line.
var tailIdents = map[string]bool{
	"Tail":      true,
	"OrderSpec": true,
	"AggSpec":   true,
	"LimitSpec": true,
}

// tailFields are the field names that carry tail state on plan/xquery types.
var tailFields = map[string]bool{
	"Tail":  true,
	"Order": true,
	"Agg":   true,
	"Limit": true,
}

// forbiddenImports are the packages holding tail definitions (and everything
// above them) that joingraph must stay independent of.
var forbiddenImports = []string{"internal/plan", "internal/xquery"}

func run(pass *analysis.Pass) error {
	if analysis.PathHasSuffix(pass.Pkg.Path(), "internal/joingraph") {
		checkJoingraph(pass)
	}
	checkFingerprints(pass)
	return nil
}

// checkJoingraph reports forbidden imports and tail-concept identifiers in
// the joingraph package itself.
func checkJoingraph(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, forbidden := range forbiddenImports {
				if analysis.PathHasSuffix(path, forbidden) {
					pass.Reportf(imp.Pos(),
						"joingraph must not import %s: the join graph is tail-free by design (graph/tail isolation)", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || !tailIdents[id.Name] {
				return true
			}
			pass.Reportf(id.Pos(),
				"joingraph must not reference tail concept %s: order/agg/limit specs live outside the graph (graph/tail isolation)", id.Name)
			return true
		})
	}
}

// checkFingerprints reports tail-field reads inside any function whose name
// mentions Fingerprint: the hash must not see tail state, or two queries
// differing only in their tail would stop sharing cached plans — or worse,
// start colliding when they should not.
func checkFingerprints(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.Contains(fd.Name.Name, "Fingerprint") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !tailFields[sel.Sel.Name] {
					return true
				}
				t := pass.TypesInfo.TypeOf(sel.X)
				named := analysis.NamedOf(t)
				if named == nil || named.Obj().Pkg() == nil {
					return true
				}
				path := named.Obj().Pkg().Path()
				if analysis.PathHasSuffix(path, "internal/plan") || analysis.PathHasSuffix(path, "internal/xquery") {
					pass.Reportf(sel.Sel.Pos(),
						"fingerprint input reads tail field %s.%s: fingerprints must be tail-invariant so cached plans transfer across order/agg/limit changes",
						named.Obj().Name(), sel.Sel.Name)
				}
				return true
			})
		}
	}
}
