package detorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detorder"
)

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, "testdata", detorder.Analyzer, "do", "repro/internal/plan")
}
