// Package detorder enforces the engine's determinism-of-iteration rules.
// Two results of the same query over the same corpus must be byte-identical
// — that is what makes scatter merges verifiable, plan replay testable and
// fingerprints stable — so map iteration order must never leak into anything
// ordered: serialized output, hash inputs, channel sends, or "first match
// wins" selections. Likewise the planning packages (internal/plan,
// internal/joingraph) must draw randomness only from the per-query seeded
// Env.Rand and never read wall-clock time, or sampling runs stop being
// reproducible. See the "Invariants and static enforcement" section of
// DESIGN.md.
package detorder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags order-sensitive work inside map iterations, and global
// randomness/time sources in the deterministic planning packages.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "detorder reports ranging over a map while writing/serializing/hashing, " +
		"sending on a channel, or returning values derived from the visited entry " +
		"(first-match-wins is nondeterministic) — collect keys and sort instead. In " +
		"internal/plan and internal/joingraph it also reports global math/rand " +
		"functions and time.Now: sampling must draw from the seeded Env.Rand only.",
	Run: run,
}

// emitMethods are method names whose call inside a map range turns random
// iteration order into observable output order.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true, "Encode": true,
}

// deterministicPkgs are the package-path suffixes where global rand/time are
// banned outright.
var deterministicPkgs = []string{"internal/plan", "internal/joingraph"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkMapRanges(pass, f)
	}
	if inDeterministicPkg(pass.Pkg.Path()) {
		for _, f := range pass.Files {
			if analysis.IsTestFile(pass.Fset, f.Pos()) {
				continue // tests may stopwatch themselves
			}
			checkGlobalRandTime(pass, f)
		}
	}
	return nil
}

func inDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if analysis.PathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

// checkMapRanges inspects every `for ... := range m` over a map.
func checkMapRanges(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapBody(pass, rng)
		return true
	})
}

// checkMapBody flags order-sensitive operations in one map-range body.
// Nested function literals are skipped: they run later, in whatever order
// their own caller imposes.
func checkMapBody(pass *analysis.Pass, rng *ast.RangeStmt) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// An inner map range reports on its own behalf.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside map iteration: delivery order is random per run; collect and sort keys first")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(pass.TypesInfo, res, loopVars) {
					pass.Reportf(n.Pos(),
						"return of a map-iteration entry: which entry is seen first is random per run; iterate sorted keys for a deterministic pick")
					break
				}
			}
		case *ast.CallExpr:
			if name, ok := emitCall(pass.TypesInfo, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside map iteration feeds random order into serialized/hashed output; collect and sort keys first", name)
			}
		}
		return true
	})
}

// emitCall recognizes calls that emit ordered output: selector methods named
// like Write/Sum/Encode, and the fmt Fprint/Print families.
func emitCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !emitMethods[sel.Sel.Name] {
		return "", false
	}
	// Package-level functions only count for fmt (Fprintf etc.); any method
	// with an emitting name counts regardless of receiver — builders, hash
	// writers and encoders all qualify.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			if pkg.Imported().Path() != "fmt" {
				return "", false
			}
			return "fmt." + sel.Sel.Name, true
		}
	}
	return sel.Sel.Name, true
}

// usesAny reports whether the expression references any of the objects.
func usesAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkGlobalRandTime flags global math/rand functions and time.Now in the
// deterministic planning packages.
func checkGlobalRandTime(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			// Constructors of seeded sources are the sanctioned path; the
			// package-level convenience functions share hidden global state.
			if sig != nil && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(call.Pos(),
					"global %s.%s in a deterministic planning package: draw from the per-query seeded Env.Rand instead", fn.Pkg().Name(), fn.Name())
			}
		case "time":
			if fn.Name() == "Now" && sig != nil && sig.Recv() == nil {
				pass.Reportf(call.Pos(),
					"time.Now in a deterministic planning package: plan and fingerprint state must not depend on wall-clock time")
			}
		}
		return true
	})
}
