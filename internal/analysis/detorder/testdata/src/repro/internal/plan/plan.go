// Package plan is a testdata stand-in for the deterministic planning layer,
// where global randomness and wall-clock reads are banned outright.
package plan

import (
	"math/rand"
	"time"
)

// sampleGlobal draws from the process-global generator.
func sampleGlobal(n int) int {
	return rand.Intn(n) // want `global rand.Intn in a deterministic planning package`
}

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in a deterministic planning package`
}

// sampleSeeded is the sanctioned pattern: an explicit seeded source.
func sampleSeeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n) // no diagnostic: method on a seeded *rand.Rand
}

var (
	_ = sampleGlobal
	_ = stamp
	_ = sampleSeeded
)
