// Package do exercises the map-iteration determinism checks.
package do

import (
	"fmt"
	"sort"
	"strings"
)

// renderUnsorted serializes in map order: different output every run.
func renderUnsorted(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want `fmt.Fprintf inside map iteration`
		sb.WriteString(k)                // want `WriteString inside map iteration`
	}
}

// firstKey returns whichever entry the runtime visits first.
func firstKey(m map[string]int) string {
	for k := range m {
		return k // want `return of a map-iteration entry`
	}
	return ""
}

// send drains a map into a channel in random order.
func send(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// renderSorted is the canonical fix: collect, sort, then emit.
func renderSorted(m map[string]int, sb *strings.Builder) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s=%d\n", k, m[k]) // no diagnostic: slice iteration
	}
}

// collect builds closures: they run later, under the caller's ordering.
func collect(m map[string]int) []func() string {
	var fns []func() string
	for k := range m {
		k := k
		fns = append(fns, func() string { return k })
	}
	return fns
}

var (
	_ = renderUnsorted
	_ = firstKey
	_ = send
	_ = renderSorted
	_ = collect
)
