// Package catalogmut enforces the engine's copy-on-write catalog contract:
// a published plan.Catalog (and the Collection/Shard values hanging off it)
// is immutable — concurrent queries read it lock-free — so every field write
// must happen inside the plan package's own constructor/loader/clone
// functions, before the catalog escapes to readers. Any other write is a
// data race waiting for traffic; the fix is always "mutate a Clone and swap
// the pointer". See the "Invariants and static enforcement" section of
// DESIGN.md.
package catalogmut

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags writes to plan.Catalog, plan.Collection and plan.Shard
// fields outside whitelisted COW constructor/clone functions.
var Analyzer = &analysis.Analyzer{
	Name: "catalogmut",
	Doc: "catalogmut reports writes to plan.Catalog/Collection/Shard fields outside " +
		"the plan package's COW constructor, loader and clone functions. Published " +
		"catalogs are read concurrently without locks; mutate a Clone and swap instead. " +
		"Functions legitimately part of the single-owner load path carry //roxvet:cow.",
	Run: run,
}

// protectedNames are the catalog object types whose fields are immutable
// after publish.
var protectedNames = map[string]bool{
	"Catalog":    true,
	"Collection": true,
	"Shard":      true,
}

// cowPrefixes whitelist the plan package's own single-owner mutation surface:
// constructors (New*), the documented load-phase registration calls (Add*),
// COW cloning (Clone*, With*) and the internal shard refresh they share.
var cowPrefixes = []string{"New", "Add", "Clone", "With", "refresh"}

func run(pass *analysis.Pass) error {
	inPlan := analysis.PathHasSuffix(pass.Pkg.Path(), "internal/plan")
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			// Test fixtures own their catalogs single-threaded; the COW
			// contract is about published, concurrently-read state.
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inPlan && (hasCOWName(fd.Name.Name) || analysis.FuncAnnotated(fd, "cow")) {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func hasCOWName(name string) bool {
	for _, p := range cowPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(pass, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, st.X)
		}
		return true
	})
}

// checkWrite walks the LHS spine of an assignment (selectors, indexing,
// dereferences) and reports if any step selects a field out of a protected
// catalog type: `sh.Gen = 3`, `col.Shards[i] = s` and `c.colls[k] = v` are
// all writes into protected storage.
func checkWrite(pass *analysis.Pass, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if name, ok := protectedBase(pass.TypesInfo, x.X); ok {
				pass.Reportf(x.Sel.Pos(),
					"write to plan.%s field %s outside a COW constructor/clone: published catalogs are immutable, mutate a Clone and swap (or mark a load-phase helper //roxvet:cow)",
					name, x.Sel.Name)
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// protectedBase reports whether the expression's type (after pointers) is
// one of the protected plan types, returning its name.
func protectedBase(info *types.Info, e ast.Expr) (string, bool) {
	t := info.TypeOf(e)
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	if !analysis.PathHasSuffix(n.Obj().Pkg().Path(), "internal/plan") {
		return "", false
	}
	if !protectedNames[n.Obj().Name()] {
		return "", false
	}
	return n.Obj().Name(), true
}
