// Package a exercises catalogmut outside the plan package, where no function
// name whitelists writes.
package a

import "repro/internal/plan"

// NewSnapshot has a constructor name, but the COW whitelist applies only
// inside the plan package itself.
func NewSnapshot(c *plan.Catalog) {
	c.Gen = 7 // want `write to plan.Catalog field Gen`
}

func rewire(col *plan.Collection, s *plan.Shard) {
	col.Shards[0] = s // want `write to plan.Collection field Shards`
	s.Gen++           // want `write to plan.Shard field Gen`
}

func reindex(c *plan.Catalog, col *plan.Collection) {
	c.Colls["x"] = col // want `write to plan.Catalog field Colls`
}

// swapIn demonstrates the escape hatch: the directive carries its reason.
func swapIn(c *plan.Catalog) {
	c.Gen = 1 //roxvet:ignore single-owner before publish, covered by load tests
}

func readOnly(c *plan.Catalog) int {
	return c.Gen // no diagnostic: reads are the whole point of publishing
}

var (
	_ = rewire
	_ = reindex
	_ = swapIn
	_ = readOnly
)
