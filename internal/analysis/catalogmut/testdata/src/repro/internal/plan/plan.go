// Package plan is a testdata stand-in for the engine's plan package: it
// declares the protected catalog types and exercises the COW whitelist,
// which applies only here.
package plan

// Catalog mirrors the real catalog: immutable once published.
type Catalog struct {
	Gen   int
	Colls map[string]*Collection
}

// Collection is a named group of shards.
type Collection struct {
	Name   string
	Shards []*Shard
}

// Shard is one partition of a collection.
type Shard struct {
	Gen  int
	Docs []string
}

// NewCatalog is a constructor: single-owner writes are the point.
func NewCatalog() *Catalog {
	c := &Catalog{Colls: make(map[string]*Collection)}
	c.Gen = 1 // no diagnostic: COW constructor
	return c
}

// Clone copies the catalog for mutate-and-swap.
func (c *Catalog) Clone() *Catalog {
	n := &Catalog{Colls: c.Colls}
	n.Gen = c.Gen + 1 // no diagnostic: COW clone
	return n
}

// AddCollection registers a collection during load.
func (c *Catalog) AddCollection(col *Collection) {
	c.Colls[col.Name] = col // no diagnostic: load-phase registration
}

// installShards is part of the single-owner load path but has no COW name.
//
//roxvet:cow runs before the catalog is published
func installShards(col *Collection, shards []*Shard) {
	col.Shards = shards // no diagnostic: annotated load-phase helper
}

// bump mutates a catalog outside any sanctioned surface.
func bump(c *Catalog) {
	c.Gen++ // want `write to plan.Catalog field Gen outside a COW constructor/clone`
}

var _ = installShards
var _ = bump
