package catalogmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/catalogmut"
)

func TestCatalogMut(t *testing.T) {
	analysistest.Run(t, "testdata", catalogmut.Analyzer, "repro/internal/plan", "a")
}
