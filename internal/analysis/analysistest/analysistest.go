// Package analysistest is a golden-test harness for roxvet analyzers in the
// style of golang.org/x/tools/go/analysis/analysistest: test packages live
// under <analyzer>/testdata/src/<path>, and expected diagnostics are spelled
// inline as `// want "regexp"` comments on the offending line. The harness
// loads the package (resolving imports from sibling testdata packages first,
// then from the real build via `go list -export`), runs the analyzer through
// the same RunPackage pipeline the production front ends use — so the
// `//roxvet:ignore` directive path is exercised by the same code tests see —
// and diffs reported findings against the want set.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run loads each package path from dir/src and checks the analyzer's
// findings against the `// want` comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	ld := &loader{
		srcDir: filepath.Join(dir, "src"),
		fset:   token.NewFileSet(),
		pkgs:   make(map[string]*loaded),
	}
	for _, path := range paths {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading testdata package %q: %v", path, err)
		}
		findings, err := analysis.RunPackage(lp.pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s over %q: %v", a.Name, path, err)
		}
		checkWants(t, ld.fset, lp.pkg.Files, findings)
	}
}

// loaded pairs a type-checked testdata package with its source files.
type loaded struct {
	pkg *analysis.Package
}

// loader resolves testdata packages from source and everything else from
// the real build's export data.
type loader struct {
	srcDir string
	fset   *token.FileSet
	pkgs   map[string]*loaded
	// checking guards against import cycles in testdata.
	checking []string
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	for _, p := range ld.checking {
		if p == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	ld.checking = append(ld.checking, path)
	defer func() { ld.checking = ld.checking[:len(ld.checking)-1] }()
	info := analysis.NewInfo()
	conf := types.Config{Importer: &testImporter{ld: ld}}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{pkg: &analysis.Package{Fset: ld.fset, Files: files, Types: tpkg, Info: info}}
	ld.pkgs[path] = lp
	return lp, nil
}

// testImporter resolves imports for testdata packages: a sibling testdata
// directory shadows everything; otherwise the path is resolved against the
// real build (std and module packages) via export data.
type testImporter struct {
	ld *loader
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := os.Stat(filepath.Join(ti.ld.srcDir, filepath.FromSlash(path))); err == nil {
		lp, err := ti.ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg.Types, nil
	}
	return importReal(ti.ld.fset, path)
}

// realImports caches real-build imports across all tests in the process:
// resolving "context" once is enough.
var (
	realMu   sync.Mutex
	realImps = make(map[string]*importResult)
)

type importResult struct {
	pkg *types.Package
	err error
}

// importReal resolves one import path from the surrounding Go build: it asks
// `go list -export` for the package's compiled export data (building it into
// the cache if needed — works fully offline) and imports that. Each path
// gets its own importer instance because importers memoize against one
// FileSet; the resulting types.Package is position-free, which is fine for
// dependencies.
func importReal(fset *token.FileSet, path string) (*types.Package, error) {
	realMu.Lock()
	defer realMu.Unlock()
	if r, ok := realImps[path]; ok {
		return r.pkg, r.err
	}
	pkg, err := importRealUncached(fset, path)
	realImps[path] = &importResult{pkg: pkg, err: err}
	return pkg, err
}

func importRealUncached(fset *token.FileSet, path string) (*types.Package, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json", "--", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	lookup := func(p string) (io.ReadCloser, error) {
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).Import(path)
}

// wantRe matches the trailing want clause of a comment; the quoted patterns
// after it are parsed by parseWants.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts the expected-diagnostic patterns from one comment
// text: a sequence of double-quoted or backquoted regexps.
func parseWants(text string) ([]string, bool) {
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil, false
	}
	rest := strings.TrimSpace(m[1])
	var pats []string
	for rest != "" {
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, false
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, false
			}
			pats = append(pats, s)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			pats = append(pats, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, false
		}
	}
	return pats, true
}

// checkWants diffs findings against the want comments of the files.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, ok := parseWants(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose pattern
// matches the message.
func claim(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
