package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignoreMarker is the suppression directive: a comment of the form
//
//	//roxvet:ignore <reason>
//
// silences every roxvet diagnostic reported on the same source line (an
// end-of-line comment) or on the line directly below (a standalone comment
// above the offending statement). The reason is mandatory — a bare
// `//roxvet:ignore` suppresses nothing and is itself reported, so every
// escape hatch in the tree carries its justification next to the code it
// excuses.
const ignoreMarker = "roxvet:ignore"

// ignoreSet is the per-package directive index built by scanIgnores.
type ignoreSet struct {
	// lines maps filename -> set of lines carrying a well-formed ignore
	// directive.
	lines map[string]map[int]bool
	// malformed collects a finding per reason-less directive.
	malformed []Finding
}

// scanIgnores harvests the ignore directives of every file. A comment is a
// directive when its text, after the comment marker, starts with
// ignoreMarker; the remainder of that comment is the reason.
func scanIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{lines: make(map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != ignoreMarker && !strings.HasPrefix(text, ignoreMarker+" ") {
					continue
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(strings.TrimPrefix(text, ignoreMarker))
				if reason == "" {
					ig.malformed = append(ig.malformed, Finding{
						Position: pos,
						Analyzer: "roxvet",
						Message:  fmt.Sprintf("//%s requires a reason (//%s <why this invariant does not apply here>); the directive was not applied", ignoreMarker, ignoreMarker),
					})
					continue
				}
				m := ig.lines[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					ig.lines[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return ig
}

// suppressed reports whether a diagnostic at pos is covered by a directive:
// one on the same line, or one on the line directly above.
func (ig *ignoreSet) suppressed(pos token.Position) bool {
	m := ig.lines[pos.Filename]
	if m == nil {
		return false
	}
	return m[pos.Line] || m[pos.Line-1]
}
