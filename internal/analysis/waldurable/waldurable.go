// Package waldurable guards the ingest subsystem's durability contract: a
// WAL is only worth its fsyncs if every byte that reaches its file goes
// through the framing/commit path that accounts offsets and decides when to
// sync. A stray os.File write in internal/ingest bypasses record framing,
// checksums and the commit boundary — the torn-tail recovery logic then has
// no idea the bytes exist, and a "recovered" log can silently diverge from
// what was acknowledged. Every raw file-write site must therefore live in a
// function that owns its durability story, marked //roxvet:waldurable. See
// the "Invariants and static enforcement" section of DESIGN.md.
package waldurable

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer flags raw os.File write calls in internal/ingest outside
// functions annotated //roxvet:waldurable.
var Analyzer = &analysis.Analyzer{
	Name: "waldurable",
	Doc: "waldurable reports raw os.File Write/WriteString/WriteAt calls inside " +
		"internal/ingest outside //roxvet:waldurable functions. WAL bytes must flow " +
		"through the framing/commit wrapper that accounts offsets and fsyncs on commit; " +
		"a bypassing write breaks torn-tail recovery. Mark a function that deliberately " +
		"owns its durability (syncs what it writes) with //roxvet:waldurable.",
	Run: run,
}

// writeMethods are the os.File mutation entry points a WAL byte could slip
// through.
var writeMethods = map[string]bool{"Write": true, "WriteString": true, "WriteAt": true}

func run(pass *analysis.Pass) error {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), "internal/ingest") {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			// Tests corrupt and truncate WAL files on purpose to exercise
			// recovery; the contract is about production write paths.
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.FuncAnnotated(fd, "waldurable") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !writeMethods[sel.Sel.Name] {
			return true
		}
		if !analysis.IsNamedType(pass.TypesInfo.TypeOf(sel.X), "os", "File") {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"raw os.File %s in internal/ingest: WAL bytes must flow through the framing/commit wrapper "+
				"(or mark a function that syncs its own writes //roxvet:waldurable)",
			sel.Sel.Name)
		return true
	})
}
