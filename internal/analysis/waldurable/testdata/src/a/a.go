// Package a is outside internal/ingest: raw file writes are its own
// business (the WAL durability contract does not apply).
package a

import "os"

func freeToWrite(f *os.File, buf []byte) {
	f.Write(buf) // no diagnostic: not internal/ingest
}
