// Package ingest is a testdata stand-in for the real WAL package: raw
// os.File writes are only legal inside //roxvet:waldurable functions.
package ingest

import "os"

// WAL mimics the log's file-owning struct.
type WAL struct {
	f *os.File
}

// The framing path's single raw-write site: annotated, so no diagnostic.
//
//roxvet:waldurable
func (w *WAL) walWrite(buf []byte) (int, error) {
	return w.f.Write(buf)
}

func (w *WAL) sneakyAppend(buf []byte) {
	w.f.Write(buf) // want "raw os.File Write in internal/ingest"
}

func (w *WAL) sneakyString(s string) {
	w.f.WriteString(s) // want "raw os.File WriteString in internal/ingest"
}

func patch(f *os.File, buf []byte, off int64) {
	f.WriteAt(buf, off) // want "raw os.File WriteAt in internal/ingest"
}

// syncedManifest owns its durability (write + sync): annotated, no
// diagnostic.
//
//roxvet:waldurable
func syncedManifest(f *os.File, body []byte) error {
	if _, err := f.Write(body); err != nil {
		return err
	}
	return f.Sync()
}

// notAFile writes to something that merely looks like a file; only os.File
// is protected.
type notAFile struct{}

func (notAFile) Write(p []byte) (int, error) { return len(p), nil }

func harmless(w notAFile, buf []byte) {
	w.Write(buf) // no diagnostic: not an os.File
}
