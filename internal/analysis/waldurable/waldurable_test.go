package waldurable_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/waldurable"
)

func TestWALDurable(t *testing.T) {
	analysistest.Run(t, "testdata", waldurable.Analyzer, "repro/internal/ingest", "a")
}
