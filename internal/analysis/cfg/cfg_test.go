package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses `func f() { body }` and returns its CFG.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// assignSite finds the site of the first *ast.AssignStmt, scanning blocks in
// construction order (deterministic, unlike ranging over the Site map).
func assignSite(t *testing.T, g *Graph) Pos {
	t.Helper()
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok {
				return Pos{Block: b, Index: i}
			}
		}
	}
	t.Fatal("no AssignStmt in graph")
	return Pos{}
}

func TestStraightLineIsOneBlock(t *testing.T) {
	g := build(t, "x := 1\nx++\n_ = x")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3", len(g.Entry.Nodes))
	}
	for i, n := range g.Entry.Nodes {
		p, ok := g.Site[n]
		if !ok || p.Block != g.Entry || p.Index != i {
			t.Errorf("node %d: site = %+v, ok = %v", i, p, ok)
		}
	}
	if !reachable(g)[g.Exit] {
		t.Error("exit not reachable")
	}
}

func TestReturnMakesTailUnreachable(t *testing.T) {
	g := build(t, "return\n_ = 1")
	r := reachable(g)
	if !r[g.Exit] {
		t.Error("exit not reachable through the return")
	}
	if p := assignSite(t, g); r[p.Block] {
		t.Error("statement after return is reachable")
	}
}

func TestLoopConservativelyExits(t *testing.T) {
	// Even `for {}` gets a head→exit edge: for lifecycle checking the safe
	// error is claiming a path exists, never hiding one.
	g := build(t, "for {\nf()\n}\n_ = 1")
	r := reachable(g)
	if !r[g.Exit] {
		t.Error("exit not reachable around an infinite loop")
	}
	if p := assignSite(t, g); !r[p.Block] {
		t.Error("statement after the loop not reachable")
	}
}

func TestBreakReachesLoopExit(t *testing.T) {
	g := build(t, "for {\nbreak\n}\n_ = 1")
	if p := assignSite(t, g); !reachable(g)[p.Block] {
		t.Error("statement after break-terminated loop not reachable")
	}
}

func TestIfWithReturnKeepsElsePath(t *testing.T) {
	g := build(t, "if c() {\nreturn\n}\n_ = 1")
	r := reachable(g)
	if !r[g.Exit] {
		t.Error("exit not reachable")
	}
	if p := assignSite(t, g); !r[p.Block] {
		t.Error("fall-through after if-return not reachable")
	}
}

func TestRangeBodyAndExitReachable(t *testing.T) {
	g := build(t, "for k := range m() {\nuse(k)\n}\n_ = 1")
	r := reachable(g)
	if !r[g.Exit] {
		t.Error("exit not reachable")
	}
	if p := assignSite(t, g); !r[p.Block] {
		t.Error("statement after range not reachable")
	}
}

func TestSwitchClausesJoin(t *testing.T) {
	g := build(t, "switch v() {\ncase 1:\na()\ndefault:\nb()\n}\n_ = 1")
	r := reachable(g)
	if !r[g.Exit] {
		t.Error("exit not reachable")
	}
	if p := assignSite(t, g); !r[p.Block] {
		t.Error("statement after switch not reachable")
	}
}
