// Package cfg builds a lightweight intra-function control-flow graph over
// go/ast, sized for roxvet's path-sensitive passes (rowsclose). It models
// the constructs that matter for resource-lifecycle checking — sequencing,
// if/else, for and range loops, switch/type-switch/select, break, continue
// and return — and deliberately approximates the rest: goto and labeled
// branches fall back to conservative edges, and panics are treated as
// normal statements (a panic unwinds through defers, which is exactly when
// a deferred Close still runs).
package cfg

import "go/ast"

// Block is a basic block: a sequence of AST nodes executed in order, then a
// transfer to one of Succs. The function's Exit block is empty and has no
// successors.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// Graph is one function body's control-flow graph.
type Graph struct {
	Entry, Exit *Block
	Blocks      []*Block

	// Site locates each statement-level node in its block, for analyses
	// that start a traversal at a known statement.
	Site map[ast.Node]Pos
}

// Pos addresses one node inside the graph.
type Pos struct {
	Block *Block
	Index int
}

// builder carries the loop/switch context stacks during construction.
type builder struct {
	g *Graph
	// breakTo / continueTo are the innermost targets for unlabeled
	// break/continue. Labeled branches conservatively use the same targets.
	breakTo    []*Block
	continueTo []*Block
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{Site: make(map[ast.Node]Pos)}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	last := b.stmts(g.Entry, body.List)
	b.edge(last, g.Exit)
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from != nil {
		from.Succs = append(from.Succs, to)
	}
}

// add appends a node to the block and records its site. A nil block (code
// after a return) swallows the node: it is unreachable.
func (b *builder) add(blk *Block, n ast.Node) {
	if blk == nil || n == nil {
		return
	}
	b.g.Site[n] = Pos{Block: blk, Index: len(blk.Nodes)}
	blk.Nodes = append(blk.Nodes, n)
}

// stmts threads a statement list through cur, returning the block control
// falls out of (nil when the list always transfers away).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	if cur == nil {
		// Unreachable code: keep building (nested funcs etc. are analyzed
		// separately) but don't wire edges.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(cur, s.Init)
		}
		b.add(cur, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then)
		b.edge(b.stmts(then, s.Body.List), join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			b.edge(b.stmt(els, s.Else), join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(cur, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			b.add(head, s.Cond)
		}
		exit := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		// Conservative: every loop may run zero times and may terminate,
		// even `for {}` — for lifecycle checking the safe error is claiming
		// a path exists, never hiding one.
		b.edge(head, exit)
		post := b.newBlock()
		if s.Post != nil {
			b.add(post, s.Post)
		}
		b.breakTo = append(b.breakTo, exit)
		b.continueTo = append(b.continueTo, post)
		b.edge(b.stmts(body, s.Body.List), post)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		b.edge(post, head)
		return exit

	case *ast.RangeStmt:
		b.add(cur, s.X)
		head := b.newBlock()
		b.edge(cur, head)
		if s.Key != nil {
			b.add(head, s.Key)
		}
		exit := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.breakTo = append(b.breakTo, exit)
		b.continueTo = append(b.continueTo, head)
		b.edge(b.stmts(body, s.Body.List), head)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(cur, s)

	case *ast.ReturnStmt:
		b.add(cur, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		b.add(cur, s)
		switch s.Tok.String() {
		case "break":
			if n := len(b.breakTo); n > 0 {
				b.edge(cur, b.breakTo[n-1])
				return nil
			}
		case "continue":
			if n := len(b.continueTo); n > 0 {
				b.edge(cur, b.continueTo[n-1])
				return nil
			}
		case "goto":
			// Conservative: treat goto as possibly reaching the exit.
			b.edge(cur, b.g.Exit)
			return nil
		}
		// fallthrough (or an unresolved label): keep sequencing.
		return cur

	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt)

	default:
		// Expression, assignment, declaration, defer, go, send, inc/dec:
		// straight-line nodes.
		b.add(cur, s)
		return cur
	}
}

// switchLike lowers switch, type-switch and select: every clause body runs
// after the header and transfers to the common join; a missing default adds
// a header→join edge.
func (b *builder) switchLike(cur *Block, s ast.Stmt) *Block {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(cur, s.Init)
		}
		if s.Tag != nil {
			b.add(cur, s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(cur, s.Init)
		}
		b.add(cur, s.Assign)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	join := b.newBlock()
	b.breakTo = append(b.breakTo, join)
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.add(cur, e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				b.add(cur, cl.Comm)
			}
			stmts = cl.Body
		}
		blk := b.newBlock()
		b.edge(cur, blk)
		b.edge(b.stmts(blk, stmts), join)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	if !hasDefault {
		b.edge(cur, join)
	}
	return join
}
