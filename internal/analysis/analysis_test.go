package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// loadSrc type-checks one import-free source file into a Package.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

// incAnalyzer reports every increment statement — a minimal analyzer for
// exercising the RunPackage pipeline and the ignore directive.
var incAnalyzer = &Analyzer{
	Name: "inc",
	Doc:  "reports ++ statements (test analyzer)",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if st, ok := n.(*ast.IncDecStmt); ok {
					p.Reportf(st.Pos(), "increment")
				}
				return true
			})
		}
		return nil
	},
}

// TestIgnoreDirective pins the //roxvet:ignore contract: a directive with a
// reason suppresses same-line and line-below diagnostics; a bare directive
// suppresses nothing and is itself reported.
func TestIgnoreDirective(t *testing.T) {
	const src = `package p

func f() {
	x := 0
	x++
	x++ //roxvet:ignore benchmark counter, not product state
	//roxvet:ignore counter is test-local
	x++
	//roxvet:ignore
	x++
	_ = x
}
`
	findings, err := RunPackage(loadSrc(t, src), []*Analyzer{incAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		line     int
		analyzer string
	}
	wants := []want{
		{5, "inc"},    // unguarded increment
		{9, "roxvet"}, // the bare directive itself
		{10, "inc"},   // the bare directive must not have applied
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wants), findings)
	}
	for i, w := range wants {
		f := findings[i]
		if f.Position.Line != w.line || f.Analyzer != w.analyzer {
			t.Errorf("finding %d = line %d [%s], want line %d [%s]: %s",
				i, f.Position.Line, f.Analyzer, w.line, w.analyzer, f.Message)
		}
	}
	if got := findings[1].Message; got == "" || !containsAll(got, "requires a reason", "not applied") {
		t.Errorf("bare-directive message = %q", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"repro/internal/plan", "internal/plan", true},
		{"internal/plan", "internal/plan", true},
		{"repro/internal/plancache", "internal/plan", false},
		{"notinternal/plan", "internal/plan", false},
		{"repro/internal/plan-b", "internal/plan", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestFuncAnnotated(t *testing.T) {
	const src = `package p

// marked does something unusual.
//
//roxvet:cow single owner until publish
func marked() {}

// unmarked mentions roxvet:cow in prose only, not as a directive line.
func unmarked() {}
`
	pkg := loadSrc(t, src)
	for _, decl := range pkg.Files[0].Decls {
		fd := decl.(*ast.FuncDecl)
		want := fd.Name.Name == "marked"
		if got := FuncAnnotated(fd, "cow"); got != want {
			t.Errorf("FuncAnnotated(%s, cow) = %v, want %v", fd.Name.Name, got, want)
		}
	}
}
