package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol (the role
// x/tools calls a "unitchecker") from scratch: the go command invokes the
// tool once per package with a JSON config file describing the unit —
// source files, import rewrites, and the export-data file of every
// dependency — and expects diagnostics on stderr plus a non-zero exit when
// any were found. Three sub-protocols matter:
//
//   - `tool -V=full` must print a self-describing version line; the go
//     command uses it as the tool's build-cache key, so it hashes the
//     executable (a rebuilt roxvet invalidates cached vet results, an
//     unchanged one reuses them — this is what keeps the CI lint job fast).
//   - `tool -flags` must describe the tool's public flags as JSON; roxvet
//     has none, so it prints an empty list and the go command passes only
//     the config file.
//   - `tool <unit>.cfg` runs the analysis unit. Units with VetxOnly (pure
//     dependencies, analyzed only for cross-package facts) are satisfied by
//     writing an empty facts file: roxvet's analyzers are all single-package,
//     so dependency units cost one process spawn and no type-checking.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VettoolMain implements the whole vettool protocol for a multichecker
// binary. It returns the process exit code; main wires it straight into
// os.Exit. Non-protocol invocations (no .cfg argument) return -1 so the
// caller can fall through to standalone mode.
func VettoolMain(args []string, analyzers []*Analyzer, stderr io.Writer) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 0 || !strings.HasSuffix(args[len(args)-1], ".cfg") {
		return -1
	}
	findings, err := runUnit(args[len(args)-1], analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "roxvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// printVersion emits the version line the go command caches vet results
// under: the tool name plus a content hash of the executable itself.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	sum := [sha256.Size]byte{}
	if data, err := os.ReadFile(os.Args[0]); err == nil {
		sum = sha256.Sum256(data)
	}
	fmt.Printf("%s version devel buildID=%x\n", name, sum[:16])
}

// runUnit executes one vet unit: parse the config, honor VetxOnly, parse and
// type-check the unit's files against its dependencies' export data, and run
// the analyzers.
func runUnit(cfgPath string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The go command requires the facts file to exist after every run,
	// including failed ones, so write it before doing any real work. roxvet
	// has no cross-package facts; the file is a placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	fset := token.NewFileSet()
	files, err := parseDir(fset, "", cfg.GoFiles) // GoFiles are absolute
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	imp := newExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := checkFiles(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunPackage(pkg, analyzers)
}
