package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// XMarkConfig controls the XMark-like auction document generator.
type XMarkConfig struct {
	Seed int64
	// Persons, Items, OpenAuctions size the document.
	Persons      int
	Items        int
	OpenAuctions int
	// MaxPrice bounds the uniform current price of an auction.
	MaxPrice float64
	// PriceBidderCorrelation sets how strongly the number of bidders of an
	// auction grows with its current price: the expected bidder count is
	// 1 + Correlation·(price/MaxPrice)·MaxBiddersExtra. 0 removes the
	// correlation (the ablation case a static optimizer could handle).
	PriceBidderCorrelation float64
	// MaxBiddersExtra is the price-driven bidder headroom.
	MaxBiddersExtra int
	// ProvinceFrac is the fraction of persons with a <province> child;
	// EducationFrac the fraction with an <education> child.
	ProvinceFrac  float64
	EducationFrac float64
	// ReserveFrac is the fraction of open auctions with a <reserve>.
	ReserveFrac float64
	// QuantityOneFrac is the fraction of items with quantity 1.
	QuantityOneFrac float64
}

// DefaultXMarkConfig sizes a document that exhibits the Sec 3.2 behaviour at
// unit-test speed.
func DefaultXMarkConfig() XMarkConfig {
	return XMarkConfig{
		Seed:                   42,
		Persons:                600,
		Items:                  500,
		OpenAuctions:           400,
		MaxPrice:               290,
		PriceBidderCorrelation: 1.0,
		MaxBiddersExtra:        8,
		ProvinceFrac:           0.4,
		EducationFrac:          0.3,
		ReserveFrac:            0.5,
		QuantityOneFrac:        0.5,
	}
}

// XMark generates the auction document. Structure (a faithful subset of the
// XMark schema touched by the paper's queries Q and Q1):
//
//	<site>
//	  <regions><item id><quantity/><name/></item>…</regions>
//	  <people><person id><name/><province?/><education?/></person>…</people>
//	  <open_auctions>
//	    <open_auction>
//	      <reserve?/> <initial/>
//	      <bidder><personref person=…/><increase/></bidder>…
//	      <current>price</current>
//	      <itemref item=…/>
//	    </open_auction>…
//	  </open_auctions>
//	</site>
//
// The crucial property (Sec 3.2): the bidder count per auction rises with
// the current price, so auctions with current > threshold have far more
// bidders — a correlation invisible to per-element statistics.
func XMark(cfg XMarkConfig) *xmltree.Document {
	return xmarkShards(cfg, 1, []string{"xmark.xml"})[0]
}

// XMarkShards generates the same corpus as XMark(cfg) pre-split into n
// shards named xmark-0.xml … xmark-<n-1>.xml. Every entity (item, person,
// open auction) has byte-identical content to its XMark(cfg) counterpart —
// shard s holds the contiguous index range [s·count/n, (s+1)·count/n) of each
// section — so loading the shards as a collection and concatenating per-shard
// results in shard order reproduces the single document's document order.
// This is the corpus the sharding equivalence tests (and cmd/datagen -shards)
// are built on.
//
// Shard indices are zero-padded to a common width once n exceeds 10
// (xmark-00.xml … xmark-15.xml), so the lexicographic file order a glob
// loader like `roxserve -collection xmark=dir/xmark-*.xml` registers equals
// the shard order — otherwise xmark-10 would sort before xmark-2 and the
// merged result order would silently diverge from document order.
func XMarkShards(cfg XMarkConfig, n int) []*xmltree.Document {
	if n < 1 {
		n = 1
	}
	width := len(fmt.Sprint(n - 1))
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("xmark-%0*d.xml", width, i)
	}
	return xmarkShards(cfg, n, names)
}

// xmarkShards is the one XMark generator. It walks the entity sections in a
// fixed order, consuming the seeded random stream identically no matter how
// many shards it routes entities to — that single rng pass is what makes the
// n-shard corpus the exact partition of the 1-shard document.
func xmarkShards(cfg XMarkConfig, n int, names []string) []*xmltree.Document {
	if cfg.Persons <= 0 || cfg.Items <= 0 || cfg.OpenAuctions <= 0 {
		d := DefaultXMarkConfig()
		d.Seed = cfg.Seed
		cfg = d
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bs := make([]*xmltree.Builder, n)
	for i := range bs {
		bs[i] = xmltree.NewBuilder(names[i])
		bs[i].StartElem("site")
	}
	// route picks the shard of entity i out of total: contiguous blocks, in
	// order, so shard boundaries never reorder entities.
	route := func(i, total int) *xmltree.Builder { return bs[i*n/total] }

	for _, b := range bs {
		b.StartElem("regions")
	}
	for i := 0; i < cfg.Items; i++ {
		b := route(i, cfg.Items)
		b.StartElem("item")
		b.Attr("id", fmt.Sprintf("item%d", i))
		b.StartElem("quantity")
		if rng.Float64() < cfg.QuantityOneFrac {
			b.Text("1")
		} else {
			b.Text(fmt.Sprintf("%d", 2+rng.Intn(4)))
		}
		b.EndElem()
		b.StartElem("name")
		b.Text(fmt.Sprintf("thing %d", i))
		b.EndElem()
		b.EndElem()
	}
	for _, b := range bs {
		b.EndElem()
		b.StartElem("people")
	}
	for i := 0; i < cfg.Persons; i++ {
		b := route(i, cfg.Persons)
		b.StartElem("person")
		b.Attr("id", fmt.Sprintf("person%d", i))
		b.StartElem("name")
		b.Text(fmt.Sprintf("person %d", i))
		b.EndElem()
		if rng.Float64() < cfg.ProvinceFrac {
			b.StartElem("province")
			b.Text(fmt.Sprintf("province %d", rng.Intn(12)))
			b.EndElem()
		}
		if rng.Float64() < cfg.EducationFrac {
			b.StartElem("education")
			b.Text("Graduate School")
			b.EndElem()
		}
		b.EndElem()
	}
	for _, b := range bs {
		b.EndElem()
		b.StartElem("open_auctions")
	}
	for i := 0; i < cfg.OpenAuctions; i++ {
		b := route(i, cfg.OpenAuctions)
		b.StartElem("open_auction")
		b.Attr("id", fmt.Sprintf("auction%d", i))
		if rng.Float64() < cfg.ReserveFrac {
			b.StartElem("reserve")
			b.Text(fmt.Sprintf("%.2f", rng.Float64()*cfg.MaxPrice/2))
			b.EndElem()
		}
		b.StartElem("initial")
		b.Text(fmt.Sprintf("%.2f", rng.Float64()*cfg.MaxPrice/4))
		b.EndElem()

		price := 1 + rng.Float64()*(cfg.MaxPrice-1)
		// The headline correlation: expected bidders grow with price.
		mean := 1 + cfg.PriceBidderCorrelation*(price/cfg.MaxPrice)*float64(cfg.MaxBiddersExtra)
		bidders := 1 + rng.Intn(int(2*mean))
		for j := 0; j < bidders; j++ {
			b.StartElem("bidder")
			b.StartElem("personref")
			b.Attr("person", fmt.Sprintf("person%d", rng.Intn(cfg.Persons)))
			b.EndElem()
			b.StartElem("increase")
			b.Text(fmt.Sprintf("%.2f", 1+rng.Float64()*10))
			b.EndElem()
			b.EndElem()
		}

		b.StartElem("current")
		b.Text(fmt.Sprintf("%.0f", price))
		b.EndElem()
		b.StartElem("itemref")
		b.Attr("item", fmt.Sprintf("item%d", rng.Intn(cfg.Items)))
		b.EndElem()
		b.EndElem()
	}
	out := make([]*xmltree.Document, n)
	for i, b := range bs {
		b.EndElem() // open_auctions
		b.EndElem() // site
		out[i] = b.MustBuild()
	}
	return out
}
