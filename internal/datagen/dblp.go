package datagen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/xmltree"
)

// DBLPConfig controls the DBLP-like generator.
type DBLPConfig struct {
	// Seed makes generation deterministic; every venue derives its own
	// stream from Seed and its name.
	Seed int64
	// Scale is the replication factor n of Sec 4.1 (×1, ×10, ×100): every
	// article is replicated Scale times with author names and titles
	// suffixed by the replica serial, preserving the distribution while
	// multiplying the size.
	Scale int
	// TagDivisor shrinks the catalog's author-tag counts by this factor
	// (miniature corpora for unit tests and quick benches; 1 = faithful).
	TagDivisor int
	// PolymathFrac is the probability that an author tag is drawn from the
	// cross-area "polymath" pool instead of the venue's area pools — the
	// source of non-empty results in mixed-area combinations.
	PolymathFrac float64
	// Skew shapes author popularity: an author tag picks pool index
	// ⌊pool·u^Skew⌋ for uniform u, so higher skew concentrates tags on few
	// prolific authors, raising within-area join selectivity.
	Skew float64
	// AuthorsPerArticle is the mean number of author tags per article.
	AuthorsPerArticle int
}

// DefaultDBLPConfig returns the configuration used by the experiments at
// scale ×1.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Seed:              2009,
		Scale:             1,
		TagDivisor:        1,
		PolymathFrac:      0.08,
		Skew:              2.0,
		AuthorsPerArticle: 3,
	}
}

func (cfg DBLPConfig) normalized() DBLPConfig {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.TagDivisor <= 0 {
		cfg.TagDivisor = 1
	}
	if cfg.Skew <= 0 {
		cfg.Skew = 2.0
	}
	if cfg.AuthorsPerArticle <= 0 {
		cfg.AuthorsPerArticle = 3
	}
	if cfg.PolymathFrac < 0 || cfg.PolymathFrac > 1 {
		cfg.PolymathFrac = 0.04
	}
	return cfg
}

// poolSizes derives the distinct-author pool size of every area from the
// catalog: roughly one distinct author per four author tags in the area, so
// venues of one area overlap substantially (the within-area correlation).
func poolSizes(venues []Venue, divisor int) map[string]int {
	tags := map[string]int{}
	for _, v := range venues {
		per := scaledTags(v.AuthorTags, divisor) / len(v.Areas)
		for _, a := range v.Areas {
			tags[a] += per
		}
	}
	out := map[string]int{}
	for a, t := range tags {
		s := t / 4
		if s < 8 {
			s = 8
		}
		out[a] = s
	}
	return out
}

func scaledTags(tags, divisor int) int {
	t := tags / divisor
	if t < 4 {
		t = 4
	}
	return t
}

// areaOffsets assigns every venue a deterministic position inside each of
// its area pools. A venue draws most authors from a window of the pool
// starting at its offset, so same-area venue pairs overlap to *different*
// degrees (neighbouring windows share much, distant ones little) — the
// heterogeneous within-area correlation that makes the paper's 4:0 group
// surprisingly hard for the classical optimizer (Sec 4.3).
func areaOffsets(venues []Venue) map[string]map[string]float64 {
	perArea := map[string][]string{}
	for _, v := range venues {
		for _, a := range v.Areas {
			perArea[a] = append(perArea[a], v.Name)
		}
	}
	out := map[string]map[string]float64{}
	for a, names := range perArea {
		out[a] = map[string]float64{}
		for i, n := range names {
			out[a][n] = float64(i) / float64(len(names))
		}
	}
	return out
}

// windowFrac is the fraction of an area pool a venue's window covers.
const windowFrac = 0.6

// polymathPool is the size of the shared cross-area author pool.
func polymathPool(sizes map[string]int) int {
	total := 0
	for _, s := range sizes {
		total += s
	}
	p := total / 50
	if p < 6 {
		p = 6
	}
	return p
}

// GenerateDBLP generates all venue documents of the catalog subset.
func GenerateDBLP(cfg DBLPConfig, venues []Venue) map[string]*xmltree.Document {
	cfg = cfg.normalized()
	sizes := poolSizes(Catalog(), cfg.TagDivisor) // pools from the full catalog
	offs := areaOffsets(Catalog())
	out := make(map[string]*xmltree.Document, len(venues))
	for _, v := range venues {
		out[v.DocName()] = generateVenue(cfg, v, sizes, offs)
	}
	return out
}

// GenerateVenue generates a single venue document.
func GenerateVenue(cfg DBLPConfig, v Venue) *xmltree.Document {
	cfg = cfg.normalized()
	return generateVenue(cfg, v, poolSizes(Catalog(), cfg.TagDivisor), areaOffsets(Catalog()))
}

func generateVenue(cfg DBLPConfig, v Venue, sizes map[string]int, offs map[string]map[string]float64) *xmltree.Document {
	rng := rand.New(rand.NewSource(venueSeed(cfg.Seed, v.Name)))
	poly := polymathPool(sizes)

	// Lay out the ×1 articles: partition the venue's tags into articles.
	tags := scaledTags(v.AuthorTags, cfg.TagDivisor)
	type article struct{ authors []string }
	var articles []article
	remaining := tags
	for remaining > 0 {
		n := 1 + rng.Intn(2*cfg.AuthorsPerArticle-1) // mean ≈ AuthorsPerArticle
		if n > remaining {
			n = remaining
		}
		remaining -= n
		art := article{}
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			name := drawAuthor(rng, cfg, v, sizes, offs, poly)
			for seen[name] { // an author appears once per article
				name = drawAuthor(rng, cfg, v, sizes, offs, poly)
			}
			seen[name] = true
			art.authors = append(art.authors, name)
		}
		articles = append(articles, art)
	}

	// Emit the document, replicating each article Scale times with
	// suffixed author names and titles (Sec 4.1's duplication-free
	// scaling).
	b := xmltree.NewBuilder(v.DocName())
	b.StartElem("journal")
	b.Attr("name", v.Name)
	for ai, art := range articles {
		for k := 0; k < cfg.Scale; k++ {
			suffix := ""
			if cfg.Scale > 1 {
				suffix = fmt.Sprintf(" (%d)", k)
			}
			b.StartElem("article")
			b.StartElem("title")
			b.Text(fmt.Sprintf("%s paper %d%s", v.Name, ai, suffix))
			b.EndElem()
			for _, a := range art.authors {
				b.StartElem("author")
				b.Text(a + suffix)
				b.EndElem()
			}
			b.EndElem()
		}
	}
	b.EndElem()
	return b.MustBuild()
}

// drawAuthor picks one author tag: from the polymath pool with probability
// PolymathFrac, else from the venue's window of one of its area pools, with
// popularity skewed towards the window start.
func drawAuthor(rng *rand.Rand, cfg DBLPConfig, v Venue, sizes map[string]int, offs map[string]map[string]float64, poly int) string {
	if rng.Float64() < cfg.PolymathFrac {
		// Polymath draws are uniform: cross-area overlap exists (non-empty
		// mixed-area results) but stays far below the within-area
		// correlation — the structure Figs 5 and 6 depend on.
		return fmt.Sprintf("polymath %d", skewIndex(rng, 1.0, poly))
	}
	area := v.Areas[rng.Intn(len(v.Areas))]
	pool := sizes[area]
	off := offs[area][v.Name]
	frac := math.Pow(rng.Float64(), cfg.Skew) * windowFrac
	idx := int((off + frac) * float64(pool))
	return fmt.Sprintf("%s author %d", area, idx%pool)
}

// skewIndex returns ⌊n·u^skew⌋: skew 1 is uniform, larger values concentrate
// mass near index 0 (the prolific authors every venue of the area shares).
func skewIndex(rng *rand.Rand, skew float64, n int) int {
	i := int(math.Pow(rng.Float64(), skew) * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

func venueSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, name)
	return int64(h.Sum64())
}

// JoinSelectivity computes js(d1, d2) of Sec 4.3: the author-text equi-join
// cardinality of two venue documents, as a percentage of the larger author
// count: js = 100·|d1 ⋈ d2| / max(|d1|,|d2|).
func JoinSelectivity(d1, d2 *xmltree.Document) float64 {
	c1, c2 := authorCounts(d1), authorCounts(d2)
	n1, n2 := 0, 0
	var joined int64
	for v, k := range c1 {
		n1 += k
		joined += int64(k) * int64(c2[v])
	}
	for _, k := range c2 {
		n2 += k
	}
	den := n1
	if n2 > den {
		den = n2
	}
	if den == 0 {
		return 0
	}
	return 100 * float64(joined) / float64(den)
}

// CorrelationC computes the paper's correlation measure for a document
// combination: the variance of the pairwise join selectivities around their
// mean (Sec 4.3 defines C = avg of squared deviations).
func CorrelationC(docs []*xmltree.Document) float64 {
	var js []float64
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			js = append(js, JoinSelectivity(docs[i], docs[j]))
		}
	}
	if len(js) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range js {
		mean += v
	}
	mean /= float64(len(js))
	c := 0.0
	for _, v := range js {
		c += (v - mean) * (v - mean)
	}
	return c / float64(len(js))
}

// AuthorValueCounts returns the multiset of author text values of a venue
// document — the exact input of the analytic join-size calculator used by
// the experiment harness (Fig 5/6 plan classes).
func AuthorValueCounts(d *xmltree.Document) map[string]int { return authorCounts(d) }

// authorCounts returns the multiset of author text values of a venue doc.
func authorCounts(d *xmltree.Document) map[string]int {
	out := map[string]int{}
	for i := 0; i < d.Len(); i++ {
		n := xmltree.NodeID(i)
		if d.Kind(n) != xmltree.KindElem || d.NodeName(n) != "author" {
			continue
		}
		out[d.StringValue(n)]++
	}
	return out
}

// AuthorTagCount counts the <author> elements of a document (the Table 3
// "# author tags" column).
func AuthorTagCount(d *xmltree.Document) int {
	total := 0
	for i := 0; i < d.Len(); i++ {
		n := xmltree.NodeID(i)
		if d.Kind(n) == xmltree.KindElem && d.NodeName(n) == "author" {
			total++
		}
	}
	return total
}
