package datagen

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestCatalogMatchesTable3(t *testing.T) {
	cat := Catalog()
	if len(cat) != 23 {
		t.Fatalf("catalog has %d venues, want 23", len(cat))
	}
	total := 0
	areas := map[string]int{}
	for _, v := range cat {
		if v.AuthorTags <= 0 {
			t.Errorf("%s: no author tags", v.Name)
		}
		total += v.AuthorTags
		areas[v.Primary()]++
	}
	// Spot-check the Table 3 figures.
	checks := map[string]int{"VLDB": 6865, "SIGMOD": 5912, "ICIP": 7935, "ADBIS": 947, "FuzzyLogicAI": 62}
	for name, want := range checks {
		v, ok := VenueByName(name)
		if !ok || v.AuthorTags != want {
			t.Errorf("%s author tags = %d, want %d", name, v.AuthorTags, want)
		}
	}
	// Primary area counts: AI 4, BI 2, DM 5, IR 6, DB 6... derived from the
	// first listed area of each venue.
	wantAreas := map[string]int{AreaAI: 4, AreaBI: 2, AreaDM: 5, AreaIR: 6, AreaDB: 6}
	for a, w := range wantAreas {
		if areas[a] != w {
			t.Errorf("area %s has %d venues, want %d", a, areas[a], w)
		}
	}
	if _, ok := VenueByName("NOPE"); ok {
		t.Errorf("VenueByName(NOPE) should miss")
	}
}

func TestCombosGroups(t *testing.T) {
	combos := Combos(Catalog())
	counts := map[string]int{}
	for _, c := range combos {
		counts[c.Group]++
	}
	// Structural counts over primary areas {AI:4, BI:2, DM:5, IR:6, DB:6}:
	// 4:0 = C(4,4)+C(5,4)+C(6,4)+C(6,4) = 1+5+15+15 = 36
	if counts["4:0"] != 36 {
		t.Errorf("4:0 combos = %d, want 36", counts["4:0"])
	}
	if counts["2:2"] == 0 || counts["3:1"] == 0 {
		t.Errorf("missing groups: %v", counts)
	}
	// No combination may have >2 distinct primary areas.
	for _, c := range combos {
		areas := map[string]bool{}
		for _, v := range c.Venues {
			areas[v.Primary()] = true
		}
		if len(areas) > 2 {
			t.Errorf("combo %v classified as %s with %d areas", c.Venues, c.Group, len(areas))
		}
	}
}

func miniCfg() DBLPConfig {
	cfg := DefaultDBLPConfig()
	cfg.TagDivisor = 40
	return cfg
}

func TestGenerateVenueShape(t *testing.T) {
	cfg := miniCfg()
	v, _ := VenueByName("VLDB")
	d := GenerateVenue(cfg, v)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantTags := v.AuthorTags / cfg.TagDivisor
	got := AuthorTagCount(d)
	if got != wantTags {
		t.Errorf("author tags = %d, want %d", got, wantTags)
	}
	if d.Name() != "VLDB.xml" {
		t.Errorf("doc name = %q", d.Name())
	}
	st := d.ComputeStats()
	if st.ByName["journal"] != 1 || st.ByName["article"] == 0 || st.ByName["title"] == 0 {
		t.Errorf("unexpected shape: %v", st.ByName)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := miniCfg()
	v, _ := VenueByName("KDD")
	d1 := GenerateVenue(cfg, v)
	d2 := GenerateVenue(cfg, v)
	if d1.Len() != d2.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", d1.Len(), d2.Len())
	}
	s1 := xmltree.SerializeString(d1, d1.Root())
	s2 := xmltree.SerializeString(d2, d2.Root())
	if s1 != s2 {
		t.Errorf("non-deterministic content")
	}
}

func TestScalingPreservesDistribution(t *testing.T) {
	v, _ := VenueByName("EDBT")
	cfg := miniCfg()
	d1 := GenerateVenue(cfg, v)
	cfg10 := cfg
	cfg10.Scale = 10
	d10 := GenerateVenue(cfg10, v)
	if got, want := AuthorTagCount(d10), 10*AuthorTagCount(d1); got != want {
		t.Errorf("×10 author tags = %d, want %d", got, want)
	}
	// Scaling must not create new cross-replica joins: selectivity between
	// the two scales of the same venue document... check self-join growth:
	// js(d,d) should be roughly preserved under scaling (suffixes prevent
	// cross-replica matches).
	js1 := JoinSelectivity(d1, d1)
	js10 := JoinSelectivity(d10, d10)
	if js10 > js1*1.5 || js10 < js1/1.5 {
		t.Errorf("self join selectivity drifted: ×1 %.1f vs ×10 %.1f", js1, js10)
	}
}

func TestWithinAreaOverlapExceedsCrossArea(t *testing.T) {
	cfg := miniCfg()
	cfg.TagDivisor = 10
	sigmod, _ := VenueByName("SIGMOD")
	icde, _ := VenueByName("ICDE")
	sigir, _ := VenueByName("SIGIR")
	dSIGMOD := GenerateVenue(cfg, sigmod)
	dICDE := GenerateVenue(cfg, icde)
	dSIGIR := GenerateVenue(cfg, sigir)

	within := JoinSelectivity(dSIGMOD, dICDE) // same area (DB)
	cross := JoinSelectivity(dSIGMOD, dSIGIR) // DB vs IR
	if within <= cross {
		t.Errorf("within-area selectivity %.2f not above cross-area %.2f", within, cross)
	}
	if within == 0 {
		t.Errorf("same-area venues share no authors")
	}
}

func TestCrossAreaBridgeVenues(t *testing.T) {
	cfg := miniCfg()
	cfg.TagDivisor = 10
	cikm, _ := VenueByName("CIKM") // DB + IR
	sigir, _ := VenueByName("SIGIR")
	vldb, _ := VenueByName("VLDB")
	dCIKM := GenerateVenue(cfg, cikm)
	dSIGIR := GenerateVenue(cfg, sigir)
	dVLDB := GenerateVenue(cfg, vldb)
	if js := JoinSelectivity(dCIKM, dSIGIR); js == 0 {
		t.Errorf("CIKM shares no authors with SIGIR despite IR area")
	}
	if js := JoinSelectivity(dCIKM, dVLDB); js == 0 {
		t.Errorf("CIKM shares no authors with VLDB despite DB area")
	}
}

func TestCorrelationCOrdersGroups(t *testing.T) {
	cfg := miniCfg()
	cfg.TagDivisor = 10
	gen := func(names ...string) []*xmltree.Document {
		var out []*xmltree.Document
		for _, n := range names {
			v, ok := VenueByName(n)
			if !ok {
				t.Fatalf("no venue %s", n)
			}
			out = append(out, GenerateVenue(cfg, v))
		}
		return out
	}
	c40 := CorrelationC(gen("SIGMOD", "ICDE", "VLDB", "EDBT"))
	c22 := CorrelationC(gen("SIGMOD", "ICDE", "SIGIR", "TREC"))
	// All-DB combinations have uniformly high pairwise selectivities; the
	// 2:2 split has two high pairs and four low ones → higher variance.
	if c22 <= c40*0.5 {
		t.Logf("C(4:0)=%.2f C(2:2)=%.2f", c40, c22)
	}
	if c40 < 0 || c22 < 0 {
		t.Errorf("negative correlation measure")
	}
}

func TestGenerateDBLPAll(t *testing.T) {
	cfg := miniCfg()
	docs := GenerateDBLP(cfg, Catalog())
	if len(docs) != 23 {
		t.Fatalf("generated %d docs, want 23", len(docs))
	}
	for name, d := range docs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !strings.HasSuffix(name, ".xml") {
			t.Errorf("doc name %q missing .xml", name)
		}
	}
}

func TestXMarkShape(t *testing.T) {
	cfg := DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 80, 60, 50
	d := XMark(cfg)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := d.ComputeStats()
	if st.ByName["person"] != 80 || st.ByName["item"] != 60 || st.ByName["open_auction"] != 50 {
		t.Errorf("counts: %v", st.ByName)
	}
	if st.ByName["bidder"] == 0 || st.ByName["current"] != 50 || st.ByName["itemref"] != 50 {
		t.Errorf("auction internals: %v", st.ByName)
	}
}

func TestXMarkPriceBidderCorrelation(t *testing.T) {
	cfg := DefaultXMarkConfig()
	cfg.OpenAuctions = 800
	d := XMark(cfg)

	// Average bidders for cheap (<145) vs expensive (>145) auctions: the
	// Sec 3.2 correlation demands expensive ones have notably more.
	var cheapBidders, cheapN, expBidders, expN int
	for i := 0; i < d.Len(); i++ {
		n := xmltree.NodeID(i)
		if d.Kind(n) != xmltree.KindElem || d.NodeName(n) != "open_auction" {
			continue
		}
		var price float64
		bidders := 0
		for _, c := range d.Children(n) {
			switch d.NodeName(c) {
			case "current":
				price, _ = d.NumberValue(c)
			case "bidder":
				bidders++
			}
		}
		if price < 145 {
			cheapBidders += bidders
			cheapN++
		} else {
			expBidders += bidders
			expN++
		}
	}
	if cheapN == 0 || expN == 0 {
		t.Fatalf("degenerate price split: %d cheap, %d expensive", cheapN, expN)
	}
	cheapAvg := float64(cheapBidders) / float64(cheapN)
	expAvg := float64(expBidders) / float64(expN)
	if expAvg < cheapAvg*1.5 {
		t.Errorf("bidder correlation too weak: cheap %.2f vs expensive %.2f", cheapAvg, expAvg)
	}

	// Without correlation the averages should be close.
	cfg.PriceBidderCorrelation = 0
	cfg.Seed = 7
	d0 := XMark(cfg)
	var cb, cn, eb, en int
	for i := 0; i < d0.Len(); i++ {
		n := xmltree.NodeID(i)
		if d0.Kind(n) != xmltree.KindElem || d0.NodeName(n) != "open_auction" {
			continue
		}
		var price float64
		bidders := 0
		for _, c := range d0.Children(n) {
			switch d0.NodeName(c) {
			case "current":
				price, _ = d0.NumberValue(c)
			case "bidder":
				bidders++
			}
		}
		if price < 145 {
			cb += bidders
			cn++
		} else {
			eb += bidders
			en++
		}
	}
	flatCheap := float64(cb) / float64(cn)
	flatExp := float64(eb) / float64(en)
	if flatExp > flatCheap*1.4 || flatCheap > flatExp*1.4 {
		t.Errorf("uncorrelated config still correlated: %.2f vs %.2f", flatCheap, flatExp)
	}
}

func TestXMarkDefaultOnZeroConfig(t *testing.T) {
	d := XMark(XMarkConfig{Seed: 5})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ComputeStats().ByName["person"] == 0 {
		t.Errorf("zero config should fall back to defaults")
	}
}

func TestJoinSelectivityBasics(t *testing.T) {
	mk := func(names ...string) *xmltree.Document {
		b := xmltree.NewBuilder("j.xml")
		b.StartElem("journal")
		for _, n := range names {
			b.StartElem("article")
			b.StartElem("author")
			b.Text(n)
			b.EndElem()
			b.EndElem()
		}
		b.EndElem()
		return b.MustBuild()
	}
	a := mk("x", "y", "z", "w")
	bdoc := mk("x", "y")
	// join = 2 matches; max tags = 4 → 50%.
	if js := JoinSelectivity(a, bdoc); js != 50 {
		t.Errorf("js = %.1f, want 50", js)
	}
	if js := JoinSelectivity(a, mk("q")); js != 0 {
		t.Errorf("disjoint js = %.1f, want 0", js)
	}
	// Identical docs: js(d,d) = tags·avg-multiplicity/max ≥ 100 for unique.
	if js := JoinSelectivity(a, a); js != 100 {
		t.Errorf("self js = %.1f, want 100", js)
	}
	if c := CorrelationC([]*xmltree.Document{a}); c != 0 {
		t.Errorf("single-doc correlation = %f, want 0", c)
	}
}
