package datagen

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// serializeAll renders a document's full XML text.
func serializeAll(t *testing.T, d *xmltree.Document) string {
	t.Helper()
	var sb strings.Builder
	if err := xmltree.Serialize(&sb, d, d.Root()); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestXMarkShardsPartitionCorpus: the n-shard corpus is an exact, in-order
// partition of the single-document corpus — concatenating the shards'
// section contents reproduces the XMark(cfg) document byte for byte.
func TestXMarkShardsPartitionCorpus(t *testing.T) {
	cfg := DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 97, 53, 41 // not divisible by 4
	whole := serializeAll(t, XMark(cfg))
	shards := XMarkShards(cfg, 4)
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}

	// Each section of the single document must equal the concatenation of
	// the shards' same section, in shard order.
	for _, section := range []string{"regions", "people", "open_auctions"} {
		openTag, closeTag := "<"+section+">", "</"+section+">"
		wantBody := cut(t, whole, openTag, closeTag)
		var got strings.Builder
		for _, sh := range shards {
			got.WriteString(cut(t, serializeAll(t, sh), openTag, closeTag))
		}
		if got.String() != wantBody {
			t.Errorf("section %s: shard concatenation differs from the single document", section)
		}
	}
}

// cut extracts the text between the first open and the last close marker.
func cut(t *testing.T, s, openTag, closeTag string) string {
	t.Helper()
	i := strings.Index(s, openTag)
	j := strings.LastIndex(s, closeTag)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("markers %s…%s not found", openTag, closeTag)
	}
	return s[i+len(openTag) : j]
}

// TestXMarkShardsEntityCounts: every entity lands in exactly one shard.
func TestXMarkShardsEntityCounts(t *testing.T) {
	cfg := DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 60, 30, 20
	shards := XMarkShards(cfg, 3)
	persons, items, auctions := 0, 0, 0
	for _, sh := range shards {
		persons += sh.CountName("person")
		items += sh.CountName("item")
		auctions += sh.CountName("open_auction")
	}
	if persons != 60 || items != 30 || auctions != 20 {
		t.Errorf("totals = (%d persons, %d items, %d auctions), want (60, 30, 20)", persons, items, auctions)
	}
}

// TestXMarkShardsNames: shard documents are named for collection loading.
func TestXMarkShardsNames(t *testing.T) {
	shards := XMarkShards(DefaultXMarkConfig(), 2)
	if shards[0].Name() != "xmark-0.xml" || shards[1].Name() != "xmark-1.xml" {
		t.Errorf("shard names = %s, %s", shards[0].Name(), shards[1].Name())
	}
	// n < 1 clamps to one shard.
	one := XMarkShards(DefaultXMarkConfig(), 0)
	if len(one) != 1 {
		t.Errorf("XMarkShards(cfg, 0) returned %d shards", len(one))
	}
}

// TestXMarkShardsNamePadding: with 10+ shards the names zero-pad so that
// lexicographic (glob) order equals shard order.
func TestXMarkShardsNamePadding(t *testing.T) {
	cfg := DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 24, 12, 12
	shards := XMarkShards(cfg, 12)
	if shards[1].Name() != "xmark-01.xml" || shards[11].Name() != "xmark-11.xml" {
		t.Fatalf("names = %s … %s, want zero-padded", shards[1].Name(), shards[11].Name())
	}
	for i := 1; i < len(shards); i++ {
		if !(shards[i-1].Name() < shards[i].Name()) {
			t.Errorf("lexicographic order breaks at %s >= %s", shards[i-1].Name(), shards[i].Name())
		}
	}
}
