// Package datagen synthesizes the two datasets of the paper's evaluation:
//
//   - an XMark-like auction document (Sec 3.2) in which the number of
//     bidders of an open auction is positively correlated with its current
//     price — the correlation a static optimizer cannot see;
//   - a DBLP-like corpus (Sec 4.1, Table 3): 23 venue documents across five
//     research areas, where authors are shared heavily within an area and
//     sparsely across areas, reproducing the join-selectivity correlation
//     structure that drives Figs 5–8. The ×1/×10/×100 scaling replicates
//     every article with suffixed author names, exactly as the paper does
//     to grow data without distorting the distribution.
//
// The real DBLP dump and the original XMark generator are not available in
// this offline environment; these generators are the substitutions recorded
// in DESIGN.md. Everything is deterministic given a seed.
package datagen

// Venue describes one journal/conference document of Table 3.
type Venue struct {
	// Name is the document name (used as doc("<Name>.xml") target).
	Name string
	// Areas lists the research areas; the first one is the primary area
	// used for grouping document combinations (2:2, 3:1, 4:0).
	Areas []string
	// AuthorTags is the number of <author> elements at scale ×1 (Table 3).
	AuthorTags int
}

// Primary returns the venue's primary research area.
func (v Venue) Primary() string { return v.Areas[0] }

// DocName returns the document name including the .xml suffix.
func (v Venue) DocName() string { return v.Name + ".xml" }

// Areas of the catalog.
const (
	AreaAI = "AI"
	AreaBI = "BI"
	AreaDM = "DM"
	AreaIR = "IR"
	AreaDB = "DB"
)

// Catalog returns the 23 venues of Table 3 with their research areas and
// ×1 author-tag counts.
func Catalog() []Venue {
	return []Venue{
		{Name: "FuzzyLogicAI", Areas: []string{AreaAI}, AuthorTags: 62},
		{Name: "AIinMedicine", Areas: []string{AreaAI}, AuthorTags: 2264},
		{Name: "AAAI", Areas: []string{AreaAI}, AuthorTags: 6832},
		{Name: "CANS", Areas: []string{AreaAI, AreaBI}, AuthorTags: 214},
		{Name: "BMCBioinformatics", Areas: []string{AreaBI}, AuthorTags: 3547},
		{Name: "Bioinformatics", Areas: []string{AreaBI}, AuthorTags: 15019},
		{Name: "BIOKDD", Areas: []string{AreaDM, AreaBI}, AuthorTags: 139},
		{Name: "MLDM", Areas: []string{AreaDM}, AuthorTags: 575},
		{Name: "ICDM", Areas: []string{AreaDM}, AuthorTags: 2205},
		{Name: "KDD", Areas: []string{AreaDM}, AuthorTags: 3201},
		{Name: "WSDM", Areas: []string{AreaDM, AreaIR}, AuthorTags: 95},
		{Name: "INEX", Areas: []string{AreaIR}, AuthorTags: 342},
		{Name: "SPIRE", Areas: []string{AreaIR}, AuthorTags: 724},
		{Name: "TREC", Areas: []string{AreaIR}, AuthorTags: 2541},
		{Name: "SIGIR", Areas: []string{AreaIR}, AuthorTags: 4584},
		{Name: "ICME", Areas: []string{AreaIR}, AuthorTags: 5757},
		{Name: "ICIP", Areas: []string{AreaIR}, AuthorTags: 7935},
		{Name: "CIKM", Areas: []string{AreaDB, AreaIR}, AuthorTags: 3684},
		{Name: "ADBIS", Areas: []string{AreaDB}, AuthorTags: 947},
		{Name: "EDBT", Areas: []string{AreaDB}, AuthorTags: 1340},
		{Name: "SIGMOD", Areas: []string{AreaDB}, AuthorTags: 5912},
		{Name: "ICDE", Areas: []string{AreaDB}, AuthorTags: 6169},
		{Name: "VLDB", Areas: []string{AreaDB}, AuthorTags: 6865},
	}
}

// VenueByName returns the catalog venue with the given name, or false.
func VenueByName(name string) (Venue, bool) {
	for _, v := range Catalog() {
		if v.Name == name {
			return v, true
		}
	}
	return Venue{}, false
}

// Combo is a combination of four catalog venues with its correlation group.
type Combo struct {
	Venues [4]Venue
	// Group is the area distribution of the combination: "4:0" (all four
	// from one area), "3:1", or "2:2"; combinations with other
	// distributions (2:1:1, 1:1:1:1) are outside the paper's groups.
	Group string
}

// Combos enumerates every 4-venue combination of the given venues that falls
// into one of the paper's three groups (classified by primary area).
func Combos(venues []Venue) []Combo {
	var out []Combo
	n := len(venues)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				for d := c + 1; d < n; d++ {
					vs := [4]Venue{venues[a], venues[b], venues[c], venues[d]}
					if g, ok := classify(vs); ok {
						out = append(out, Combo{Venues: vs, Group: g})
					}
				}
			}
		}
	}
	return out
}

func classify(vs [4]Venue) (string, bool) {
	counts := map[string]int{}
	for _, v := range vs {
		counts[v.Primary()]++
	}
	switch len(counts) {
	case 1:
		return "4:0", true
	case 2:
		for _, c := range counts {
			if c == 2 {
				return "2:2", true
			}
		}
		return "3:1", true
	default:
		return "", false
	}
}
