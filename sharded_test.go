package rox

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
)

// newXMarkEngines builds the two sides of the equivalence contract: one
// engine holding the whole XMark corpus as a single document, and one holding
// the same corpus pre-split into n shards of collection "xmark".
func newXMarkEngines(t *testing.T, n int) (single, sharded *Engine) {
	t.Helper()
	cfg := datagen.DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 200, 120, 100
	single = NewEngine()
	single.LoadDocument(datagen.XMark(cfg))
	sharded = NewEngine()
	sharded.LoadCollection("xmark", datagen.XMarkShards(cfg, n))
	return single, sharded
}

// TestCollectionEquivalence is the sharding contract: a collection() query
// over the XMark corpus split into 4 shards returns results byte-identical
// to the same corpus loaded as a single catalog — for ordered item queries
// and for count() aggregates.
func TestCollectionEquivalence(t *testing.T) {
	single, sharded := newXMarkEngines(t, 4)
	queries := []struct {
		name            string
		docQ, collQ     string
		wantAtLeastRows int
	}{
		{
			name:            "ordered persons with education",
			docQ:            `for $p in doc("xmark.xml")//person[education] return $p`,
			collQ:           `for $p in collection("xmark")//person[education] return $p`,
			wantAtLeastRows: 10,
		},
		{
			name:            "ordered two-variable constructor within auctions",
			docQ:            `for $a in doc("xmark.xml")//open_auction[reserve], $b in $a/bidder where $a/current > 150 return <hit>{$b}</hit>`,
			collQ:           `for $a in collection("xmark")//open_auction[reserve], $b in $a/bidder where $a/current > 150 return <hit>{$b}</hit>`,
			wantAtLeastRows: 10,
		},
		{
			name:            "count of bidders in reserved auctions",
			docQ:            `for $b in doc("xmark.xml")//open_auction[reserve]//bidder return count($b)`,
			collQ:           `for $b in collection("xmark")//open_auction[reserve]//bidder return count($b)`,
			wantAtLeastRows: 1,
		},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			want, err := single.Query(q.docQ)
			if err != nil {
				t.Fatalf("single-catalog query: %v", err)
			}
			got, err := sharded.Query(q.collQ)
			if err != nil {
				t.Fatalf("collection query: %v", err)
			}
			if len(want.Items) < q.wantAtLeastRows {
				t.Fatalf("degenerate test corpus: only %d rows", len(want.Items))
			}
			if len(got.Items) != len(want.Items) {
				t.Fatalf("row count: sharded %d, single %d", len(got.Items), len(want.Items))
			}
			for i := range want.Items {
				if got.Items[i] != want.Items[i] {
					t.Fatalf("item %d differs:\nsharded: %s\nsingle:  %s", i, got.Items[i], want.Items[i])
				}
			}
			if len(got.Stats.Shards) != 4 {
				t.Errorf("ShardStats count = %d, want 4", len(got.Stats.Shards))
			}
		})
	}
}

// TestCollectionAggregateOrderEquivalence extends the sharding contract to
// the aggregation/ordering tail: every aggregate (sum, avg, min, max over
// decimal-valued paths — the exact partial-sum merge keeps grouping
// invisible) and every order by (numeric and string keys, ascending and
// descending, ties included) must be byte-identical between the single
// catalog and the same corpus split into 4 and 12 shards — on the cold
// scatter AND on the prepared plan-cache replay.
func TestCollectionAggregateOrderEquivalence(t *testing.T) {
	queries := []struct {
		name, docQ, collQ string
	}{
		{
			name:  "sum of decimal initial prices",
			docQ:  `for $a in doc("xmark.xml")//open_auction return sum($a/initial)`,
			collQ: `for $a in collection("xmark")//open_auction return sum($a/initial)`,
		},
		{
			name:  "avg of reserves over reserved auctions",
			docQ:  `for $a in doc("xmark.xml")//open_auction[reserve] return avg($a/reserve)`,
			collQ: `for $a in collection("xmark")//open_auction[reserve] return avg($a/reserve)`,
		},
		{
			name:  "min bidder increase",
			docQ:  `for $b in doc("xmark.xml")//open_auction//bidder return min($b/increase)`,
			collQ: `for $b in collection("xmark")//open_auction//bidder return min($b/increase)`,
		},
		{
			name:  "max current price",
			docQ:  `for $a in doc("xmark.xml")//open_auction return max($a/current)`,
			collQ: `for $a in collection("xmark")//open_auction return max($a/current)`,
		},
		{
			name:  "order by integer key descending with ties",
			docQ:  `for $a in doc("xmark.xml")//open_auction where $a/current > 100 order by $a/current descending return $a`,
			collQ: `for $a in collection("xmark")//open_auction where $a/current > 100 order by $a/current descending return $a`,
		},
		{
			name:  "order by string attribute key",
			docQ:  `for $p in doc("xmark.xml")//person[education] order by $p/@id return $p`,
			collQ: `for $p in collection("xmark")//person[education] order by $p/@id return $p`,
		},
		{
			name:  "order by all-equal key is pure stability",
			docQ:  `for $p in doc("xmark.xml")//person[education] order by $p/education return $p`,
			collQ: `for $p in collection("xmark")//person[education] order by $p/education return $p`,
		},
	}
	for _, shards := range []int{4, 12} {
		single, sharded := newXMarkEngines(t, shards)
		for _, q := range queries {
			t.Run(fmt.Sprintf("%d-shard/%s", shards, q.name), func(t *testing.T) {
				want, err := single.Query(q.docQ)
				if err != nil {
					t.Fatalf("single-catalog query: %v", err)
				}
				prep, err := sharded.Prepare(q.collQ)
				if err != nil {
					t.Fatalf("prepare: %v", err)
				}
				cold, err := prep.Query()
				if err != nil {
					t.Fatalf("cold scatter: %v", err)
				}
				assertSameItems(t, "cold scatter", want.Items, cold.Items)
				replay, err := prep.Query()
				if err != nil {
					t.Fatalf("prepared replay: %v", err)
				}
				assertSameItems(t, "prepared replay", want.Items, replay.Items)
				if !replay.Stats.CacheHit || replay.Stats.SampleTuples != 0 {
					t.Errorf("replay: CacheHit=%v SampleTuples=%d, want per-shard hits with zero sampling",
						replay.Stats.CacheHit, replay.Stats.SampleTuples)
				}
				if len(cold.Stats.Shards) != shards {
					t.Errorf("ShardStats count = %d, want %d", len(cold.Stats.Shards), shards)
				}
				if cold.Stats.Rows != len(cold.Items) {
					t.Errorf("Stats.Rows = %d, len(Items) = %d", cold.Stats.Rows, len(cold.Items))
				}
			})
		}
	}
}

// assertSameItems fails on the first differing item (byte comparison).
func assertSameItems(t *testing.T, phase string, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, single catalog has %d", phase, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: item %d differs:\nsharded: %s\nsingle:  %s", phase, i, got[i], want[i])
		}
	}
}

// pricedShardXML builds one people shard whose persons carry numeric ages and
// decimal salaries (stress for the exact partial-sum merge) starting at id
// base.
func pricedShardXML(base, n int) string {
	var sb strings.Builder
	sb.WriteString("<people>")
	for i := 0; i < n; i++ {
		id := base + i
		fmt.Fprintf(&sb, `<person id="p%04d"><name>n%d</name><age>%d</age><salary>%d.%02d</salary></person>`,
			id, id, 20+(id*7)%50, 1000+(id*37)%900, (id*53)%100)
	}
	sb.WriteString("</people>")
	return sb.String()
}

// TestShardedAggregateDriftEquivalence is the acceptance contract's drift
// leg: after one shard is reloaded with 10× the data, prepared aggregate and
// order-by queries must re-optimize that shard only and still return results
// byte-identical to a single catalog holding the same post-reload corpus.
func TestShardedAggregateDriftEquivalence(t *testing.T) {
	shardSpans := [][2]int{{0, 30}, {100, 30}, {200, 30}} // {base, n} per shard
	sharded := NewEngine()
	for i, sp := range shardSpans {
		if err := sharded.LoadCollectionShardXML("ppl", fmt.Sprintf("ppl-%d.xml", i),
			pricedShardXML(sp[0], sp[1])); err != nil {
			t.Fatal(err)
		}
	}
	singleFor := func(spans [][2]int) *Engine {
		var sb strings.Builder
		sb.WriteString("<people>")
		for _, sp := range spans {
			inner := pricedShardXML(sp[0], sp[1])
			sb.WriteString(strings.TrimSuffix(strings.TrimPrefix(inner, "<people>"), "</people>"))
		}
		sb.WriteString("</people>")
		eng := NewEngine()
		if err := eng.LoadXML("ppl.xml", sb.String()); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	queries := []struct{ name, collQ, docQ string }{
		{"sum", `for $p in collection("ppl")//person return sum($p/salary)`,
			`for $p in doc("ppl.xml")//person return sum($p/salary)`},
		{"avg", `for $p in collection("ppl")//person return avg($p/salary)`,
			`for $p in doc("ppl.xml")//person return avg($p/salary)`},
		{"min", `for $p in collection("ppl")//person return min($p/age)`,
			`for $p in doc("ppl.xml")//person return min($p/age)`},
		{"max", `for $p in collection("ppl")//person return max($p/salary)`,
			`for $p in doc("ppl.xml")//person return max($p/salary)`},
		{"order by age desc", `for $p in collection("ppl")//person order by $p/age descending return $p`,
			`for $p in doc("ppl.xml")//person order by $p/age descending return $p`},
	}
	preps := make([]*Prepared, len(queries))
	for i, q := range queries {
		p, err := sharded.Prepare(q.collQ)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		preps[i] = p
	}

	single := singleFor(shardSpans)
	for i, q := range queries {
		want, err := single.Query(q.docQ)
		if err != nil {
			t.Fatalf("%s single: %v", q.name, err)
		}
		for _, phase := range []string{"cold", "replay"} {
			got, err := preps[i].Query()
			if err != nil {
				t.Fatalf("%s %s: %v", q.name, phase, err)
			}
			assertSameItems(t, q.name+" "+phase, want.Items, got.Items)
			if phase == "replay" && (!got.Stats.CacheHit || got.Stats.SampleTuples != 0) {
				t.Errorf("%s replay missed the cache: CacheHit=%v SampleTuples=%d",
					q.name, got.Stats.CacheHit, got.Stats.SampleTuples)
			}
		}
	}

	// Reload the middle shard with 10× the data — far beyond the drift ratio.
	shardSpans[1] = [2]int{100, 300}
	if err := sharded.LoadCollectionShardXML("ppl", "ppl-1.xml",
		pricedShardXML(shardSpans[1][0], shardSpans[1][1])); err != nil {
		t.Fatal(err)
	}
	single = singleFor(shardSpans)
	for i, q := range queries {
		want, err := single.Query(q.docQ)
		if err != nil {
			t.Fatalf("%s single after reload: %v", q.name, err)
		}
		drift, err := preps[i].Query()
		if err != nil {
			t.Fatalf("%s drift query: %v", q.name, err)
		}
		assertSameItems(t, q.name+" drift", want.Items, drift.Items)
		if !drift.Stats.Reoptimized {
			t.Errorf("%s: reloaded shard did not re-optimize", q.name)
		}
		for _, sh := range drift.Stats.Shards {
			if sh.Shard != "ppl-1.xml" && (!sh.Stats.CacheHit || sh.Stats.SampleTuples != 0) {
				t.Errorf("%s: untouched shard %s lost its cached plan", q.name, sh.Shard)
			}
		}
		settled, err := preps[i].Query()
		if err != nil {
			t.Fatalf("%s settled query: %v", q.name, err)
		}
		assertSameItems(t, q.name+" settled", want.Items, settled.Items)
		if !settled.Stats.CacheHit || settled.Stats.SampleTuples != 0 {
			t.Errorf("%s settled run missed the cache: CacheHit=%v SampleTuples=%d",
				q.name, settled.Stats.CacheHit, settled.Stats.SampleTuples)
		}
	}
}

// TestCollectionShardStatsRollup checks that the scatter-gather Stats add up:
// top-level tuple counters are the per-shard sums and every shard reports its
// own plan.
func TestCollectionShardStatsRollup(t *testing.T) {
	_, sharded := newXMarkEngines(t, 4)
	res, err := sharded.Query(`for $p in collection("xmark")//person[education] return $p`)
	if err != nil {
		t.Fatal(err)
	}
	var exec, sample, interm int64
	rows := 0
	for _, sh := range res.Stats.Shards {
		exec += sh.Stats.ExecTuples
		sample += sh.Stats.SampleTuples
		interm += sh.Stats.CumulativeIntermediate
		rows += sh.Stats.Rows
		if sh.Stats.Plan == "" {
			t.Errorf("shard %s reports no plan", sh.Shard)
		}
		if sh.Stats.SampleTuples == 0 {
			t.Errorf("shard %s did no sampling on a cold query", sh.Shard)
		}
	}
	if res.Stats.ExecTuples != exec || res.Stats.SampleTuples != sample ||
		res.Stats.CumulativeIntermediate != interm {
		t.Errorf("rollup mismatch: top (%d, %d, %d) vs shard sums (%d, %d, %d)",
			res.Stats.ExecTuples, res.Stats.SampleTuples, res.Stats.CumulativeIntermediate,
			exec, sample, interm)
	}
	if rows != res.Stats.Rows {
		t.Errorf("shard rows sum %d != top rows %d", rows, res.Stats.Rows)
	}
	if !strings.HasPrefix(res.Stats.Plan, "scatter(xmark/") {
		t.Errorf("top-level plan = %q, want scatter(xmark/…)", res.Stats.Plan)
	}
}

// shardXML builds a small people shard with n persons, m of which carry the
// marker element the test queries select on.
func shardXML(n, m int) string {
	var sb strings.Builder
	sb.WriteString("<people>")
	for i := 0; i < n; i++ {
		if i < m {
			fmt.Fprintf(&sb, `<person id="p%d"><name>n%d</name><marker>yes</marker></person>`, i, i)
		} else {
			fmt.Fprintf(&sb, `<person id="p%d"><name>n%d</name></person>`, i, i)
		}
	}
	sb.WriteString("</people>")
	return sb.String()
}

// TestShardReloadInvalidatesOnlyThatShard is the per-shard cache-invalidation
// contract: after reloading one shard with drastically different data, the
// next query replays cached plans on the untouched shards (zero sampling)
// and re-optimizes only the reloaded one.
func TestShardReloadInvalidatesOnlyThatShard(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("ppl-%d.xml", i)
		if err := eng.LoadCollectionShardXML("ppl", name, shardXML(40, 40)); err != nil {
			t.Fatal(err)
		}
	}
	const q = `for $p in collection("ppl")//person[marker] return $p`

	cold, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheHit {
		t.Fatalf("cold query reported a cache hit")
	}
	warm, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit || warm.Stats.SampleTuples != 0 {
		t.Fatalf("warm query: CacheHit=%v SampleTuples=%d, want hit with zero sampling",
			warm.Stats.CacheHit, warm.Stats.SampleTuples)
	}

	// Reload the middle shard with 10× the data: far beyond the drift ratio.
	if err := eng.LoadCollectionShardXML("ppl", "ppl-1.xml", shardXML(400, 400)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Shards) != 3 {
		t.Fatalf("shard stats count = %d", len(res.Stats.Shards))
	}
	for _, sh := range res.Stats.Shards {
		switch sh.Shard {
		case "ppl-1.xml":
			if !sh.Stats.Reoptimized {
				t.Errorf("reloaded shard was not re-optimized (CacheHit=%v SampleTuples=%d)",
					sh.Stats.CacheHit, sh.Stats.SampleTuples)
			}
		default:
			if !sh.Stats.CacheHit || sh.Stats.SampleTuples != 0 {
				t.Errorf("untouched shard %s lost its cached plan: CacheHit=%v SampleTuples=%d",
					sh.Shard, sh.Stats.CacheHit, sh.Stats.SampleTuples)
			}
		}
	}
	if res.Stats.Rows != 40+400+40 {
		t.Errorf("rows after reload = %d, want 480", res.Stats.Rows)
	}

	// And the shard settles: the re-optimized plan serves the next query.
	settled, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !settled.Stats.CacheHit || settled.Stats.SampleTuples != 0 {
		t.Errorf("post-reload query should fully hit: CacheHit=%v SampleTuples=%d",
			settled.Stats.CacheHit, settled.Stats.SampleTuples)
	}
}

// TestCollectionPrepared runs a collection query through Prepare: compile
// once, scatter on every call, cache per shard.
func TestCollectionPrepared(t *testing.T) {
	_, sharded := newXMarkEngines(t, 3)
	prep, err := sharded.Prepare(`for $p in collection("xmark")//person[education] return $p`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	second, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Items) == 0 || len(first.Items) != len(second.Items) {
		t.Fatalf("prepared runs disagree: %d vs %d items", len(first.Items), len(second.Items))
	}
	if !second.Stats.CacheHit || second.Stats.SampleTuples != 0 {
		t.Errorf("second prepared run: CacheHit=%v SampleTuples=%d, want full per-shard hits",
			second.Stats.CacheHit, second.Stats.SampleTuples)
	}
}

// TestCollectionConcurrent hammers one sharded engine from many goroutines
// (run under -race) and checks every result matches the sequential answer.
func TestCollectionConcurrent(t *testing.T) {
	_, sharded := newXMarkEngines(t, 4)
	const q = `for $p in collection("xmark")//person[education] return $p`
	want, err := sharded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(sharded, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pool.Query(context.Background(), q)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Items) != len(want.Items) {
				errs <- fmt.Errorf("got %d items, want %d", len(res.Items), len(want.Items))
				return
			}
			for i := range want.Items {
				if res.Items[i] != want.Items[i] {
					errs <- fmt.Errorf("item %d differs", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCollectionCancellation: a canceled context aborts the scatter instead
// of evaluating every shard.
func TestCollectionCancellation(t *testing.T) {
	_, sharded := newXMarkEngines(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sharded.QueryContext(ctx, `for $p in collection("xmark")//person[education] return $p`)
	if err == nil {
		t.Fatal("canceled collection query succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestCollectionErrors covers the failure surface of the collection API.
func TestCollectionErrors(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadCollectionShardXML("a", "a-0.xml", `<r><x>1</x></r>`); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadCollectionShardXML("b", "b-0.xml", `<r><x>1</x></r>`); err != nil {
		t.Fatal(err)
	}

	t.Run("unknown collection", func(t *testing.T) {
		_, err := eng.Query(`for $x in collection("nope")//x return $x`)
		if !errors.Is(err, ErrNoSuchCollection) {
			t.Errorf("err = %v, want ErrNoSuchCollection", err)
		}
		var nce *NoSuchCollectionError
		if !errors.As(err, &nce) || nce.Name != "nope" {
			t.Errorf("err carries name %v, want nope", err)
		}
	})
	t.Run("two collections in one query", func(t *testing.T) {
		_, err := eng.Query(`for $x in collection("a")//x, $y in collection("b")//x return $x`)
		if err == nil || !strings.Contains(err.Error(), "at most one collection") {
			t.Errorf("err = %v, want at-most-one-collection failure", err)
		}
	})
	t.Run("static baseline rejects collections", func(t *testing.T) {
		_, err := eng.QueryStatic(`for $x in collection("a")//x return $x`)
		if !errors.Is(err, ErrStaticCollection) {
			t.Errorf("err = %v, want ErrStaticCollection", err)
		}
	})
	t.Run("name used as both doc and collection", func(t *testing.T) {
		_, err := eng.Query(`for $x in collection("a")//x, $y in doc("a")//x return $x`)
		if err == nil || !strings.Contains(err.Error(), "both doc") {
			t.Errorf("err = %v, want doc/collection conflict failure", err)
		}
	})
	t.Run("unknown shard document still typed", func(t *testing.T) {
		// doc() addressing of a shard that does not exist keeps the document
		// error surface.
		_, err := eng.Query(`for $x in doc("a-9.xml")//x return $x`)
		if !errors.Is(err, ErrNoSuchDocument) {
			t.Errorf("err = %v, want ErrNoSuchDocument", err)
		}
	})
}

// TestCollectionShardsAccessors covers the registry accessors.
func TestCollectionShardsAccessors(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 3; i++ {
		if err := eng.LoadCollectionShardXML("c", fmt.Sprintf("s%d.xml", i), `<r><x>v</x></r>`); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Collections(); len(got) != 1 || got[0] != "c" {
		t.Errorf("Collections() = %v", got)
	}
	shards, err := eng.CollectionShards("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 || shards[0] != "s0.xml" || shards[2] != "s2.xml" {
		t.Errorf("CollectionShards = %v, want registration order s0..s2", shards)
	}
	if _, err := eng.CollectionShards("nope"); !errors.Is(err, ErrNoSuchCollection) {
		t.Errorf("CollectionShards(nope) err = %v", err)
	}
	// Shards are documents too.
	docs := eng.Documents()
	if len(docs) != 3 {
		t.Errorf("Documents() = %v, want the 3 shards", docs)
	}
}

// TestShardReloadViaDocPath: shards double as documents, so reloading one
// through the plain document path (LoadXML under the shard's name) must move
// that shard's generation stamp exactly like LoadCollectionShard — otherwise
// cached per-shard plans would replay against changed data without drift
// verification.
func TestShardReloadViaDocPath(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 3; i++ {
		if err := eng.LoadCollectionShardXML("ppl", fmt.Sprintf("ppl-%d.xml", i), shardXML(40, 40)); err != nil {
			t.Fatal(err)
		}
	}
	const q = `for $p in collection("ppl")//person[marker] return $p`
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}

	// Reload the middle shard through the *document* API with 10x the data.
	if err := eng.LoadXML("ppl-1.xml", shardXML(400, 400)); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 40+400+40 {
		t.Fatalf("rows = %d, want 480 (doc-path reload must be visible to the collection)", res.Stats.Rows)
	}
	for _, sh := range res.Stats.Shards {
		switch sh.Shard {
		case "ppl-1.xml":
			if !sh.Stats.Reoptimized {
				t.Errorf("doc-path reloaded shard was not re-optimized: CacheHit=%v SampleTuples=%d",
					sh.Stats.CacheHit, sh.Stats.SampleTuples)
			}
		default:
			if !sh.Stats.CacheHit || sh.Stats.SampleTuples != 0 {
				t.Errorf("untouched shard %s lost its cached plan", sh.Shard)
			}
		}
	}
}
