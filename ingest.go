package rox

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/shardrpc"
	"repro/internal/xmltree"
)

// Ingester is the engine's live-ingest handle: append XML fragments to
// loaded documents (or collection shards) without stopping readers, then
// Commit to publish them all in one copy-on-write catalog swap. Appends
// accumulate in an in-memory overlay — a segmented document plus a delta
// index over the immutable base (possibly a memory-mapped packed container)
// — so a commit costs O(batch), never O(document), and readers of earlier
// snapshots keep their snapshot: a query in flight across a commit sees the
// catalog as of its start, and the plan cache's stale-generation →
// replay-and-verify → drift machinery absorbs the generation bump exactly
// like a shard reload.
//
// With OpenDir attached, every append is logged to a write-ahead log and
// Commit fsyncs a commit record before publishing, so a crashed process
// restarts warm: OpenDir replays the committed batches on top of the last
// compacted snapshots (torn or uncommitted log tails are discarded — they
// were never acknowledged). Compact flattens the overlays into fresh packed
// ROXD containers and truncates the WAL, with the directory's manifest
// making the switch crash-atomic.
//
// The incremental path is exact, not approximate: appending fragments
// f1..fk to a document shredded from text B yields the same node table, the
// same dictionary ids and therefore byte-identical query results as loading
// B+f1+..+fk at once.
//
// One Ingester serializes its own operations internally and is safe for
// concurrent use alongside any number of readers; an engine has one, shared
// (Engine.Ingest).
type Ingester struct {
	e *Engine

	mu   sync.Mutex
	dir  *ingest.Dir           // durable state; nil for in-memory ingest
	docs map[string]*ingestDoc // per-target overlay state
	// remotes buffers appends routed to remote collection shards until
	// Commit forwards each batch over shardrpc; keyed endpoint|doc.
	remotes map[string]*remoteBatch
	// rr holds per-collection round-robin cursors for appends addressed to a
	// collection rather than a specific shard.
	rr map[string]int

	// compactAfter triggers Compact from Commit once the published overlays
	// hold at least this many appended nodes; 0 disables auto-compaction.
	compactAfter int

	counters *metrics.IngestCounters
	// broken latches a durability failure (a WAL write error): every
	// subsequent operation fails with it, because the log no longer
	// faithfully describes the in-memory state.
	broken error
}

// ingestDoc is the per-document overlay state between compactions.
type ingestDoc struct {
	app *xmltree.Appender
	// baseIx indexes the appender's base segment — the catalog index the
	// overlay extends (nil until first needed for a fresh document).
	baseIx *index.Index
	// published is the index of the last committed publish (nil before the
	// first commit); comparing it against the catalog detects external swaps.
	published *index.Index
	// frags replays this document's appends since its base was established
	// (for rebasing onto an externally swapped document); committed marks how
	// many of them have been committed.
	frags     []ingest.Append
	committed int
}

func (s *ingestDoc) dirty() int { return len(s.frags) - s.committed }

// deltaNodes returns how many appended nodes the overlay currently holds
// (committed and uncommitted).
func (s *ingestDoc) deltaNodes() int {
	if s.app == nil {
		return 0
	}
	return s.app.Len() - s.app.BaseLen()
}

// remoteBatch buffers fragments bound for one remote shard until Commit.
type remoteBatch struct {
	endpoint, doc string
	frags         []shardrpc.IngestFragment
}

// Ingest returns the engine's shared live-ingest handle, creating it on
// first use.
func (e *Engine) Ingest() *Ingester {
	e.ingOnce.Do(func() {
		e.ing = &Ingester{
			e:        e,
			docs:     make(map[string]*ingestDoc),
			remotes:  make(map[string]*remoteBatch),
			rr:       make(map[string]int),
			counters: &metrics.IngestCounters{},
		}
	})
	return e.ing
}

// Append appends an XML fragment (one or more top-level elements) to the
// named target through the engine's shared Ingester; Commit publishes.
func (e *Engine) Append(target, xml string) error {
	return e.Ingest().Append(target, xml)
}

// Commit publishes all pending appends through the engine's shared Ingester.
func (e *Engine) Commit(ctx context.Context) (uint64, error) {
	return e.Ingest().Commit(ctx)
}

// OpenIngestDir attaches a durable ingest directory to the engine's shared
// Ingester: compacted snapshots in the directory are (re)registered, the WAL
// is replayed batch by batch on top of them — each batch published as its
// own catalog swap, so generation stamps advance exactly as they did before
// the restart — and subsequent appends and commits are logged there. It
// returns the number of committed batches recovered. Call it after the
// corpus is loaded and before serving ingest traffic.
func (e *Engine) OpenIngestDir(path string) (int, error) {
	return e.Ingest().OpenDir(path)
}

// SetCounters routes the ingester's observability counters to c (e.g. a
// serving pool's metrics.Aggregator.Ingest) instead of the private default.
// Call before ingesting.
func (g *Ingester) SetCounters(c *metrics.IngestCounters) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c == nil || c == g.counters {
		return
	}
	// Carry over history accumulated before the handoff — boot-time WAL
	// replay happens before the serving aggregator exists.
	c.Absorb(g.counters.Snapshot())
	g.counters = c
}

// SetCompactAfter makes Commit trigger a Compact once the published
// overlays hold at least n appended nodes; n <= 0 disables auto-compaction
// (the default).
func (g *Ingester) SetCompactAfter(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.compactAfter = n
}

// OpenDir attaches a durable ingest directory (see Engine.OpenIngestDir).
func (g *Ingester) OpenDir(path string) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dir != nil {
		return 0, fmt.Errorf("rox: ingest directory already open (%s)", g.dir.Path())
	}
	d, batches, err := ingest.OpenDir(path)
	if err != nil {
		return 0, err
	}
	// Compacted snapshots supersede whatever the corpus load registered
	// under the same names: they already contain every batch the truncated
	// WAL no longer holds. Name order, so every restart assigns the same
	// generation stamps.
	snaps := d.SnapshotPaths()
	for _, doc := range sortedKeys(snaps) {
		ix, err := index.OpenPackedFile(snaps[doc])
		if err != nil {
			d.Close()
			return 0, fmt.Errorf("rox: ingest snapshot %s: %w", snaps[doc], err)
		}
		g.e.publishIndexed(ix)
	}
	// Re-apply the committed batches, one publish per batch: the catalog
	// generation advances monotonically through the same sequence of states
	// the pre-crash process published.
	for _, b := range batches {
		for _, ap := range b.Appends {
			if err := g.applyLocked(ap.Target, ap.XML); err != nil {
				d.Close()
				return 0, fmt.Errorf("rox: replaying wal batch %d: %w", b.Seq, err)
			}
		}
		gen := g.publishLocked()
		// Record where replay got to without counting new commits — these
		// batches were already counted in their first life.
		g.counters.SetLastCommit(b.Seq, gen)
	}
	g.counters.Replayed(len(batches))
	g.dir = d
	g.updateGauges()
	return len(batches), nil
}

// Append appends an XML fragment to the named target: a loaded document, a
// collection (the fragment routes round-robin across its shards), or a new
// document name (the fragment becomes the document). The append is applied
// to the in-memory overlay and logged to the WAL when one is attached, but
// is not visible to queries — and not durable — until Commit.
func (g *Ingester) Append(target, xml string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.broken != nil {
		return g.broken
	}
	cat := g.e.catalog()
	if col, err := cat.Collection(target); err == nil {
		if len(col.Shards) == 0 {
			return fmt.Errorf("rox: collection %q has no shards to ingest into", target)
		}
		sh := col.Shards[g.rr[target]%len(col.Shards)]
		g.rr[target]++
		if sh.Remote != nil {
			return g.bufferRemote(sh.Remote, xml)
		}
		target = sh.Name()
	}
	if err := g.applyLocked(target, xml); err != nil {
		return err
	}
	if g.dir != nil {
		if err := g.dir.WAL().LogAppend(ingest.Append{Target: target, Frag: "ingest", XML: xml}); err != nil {
			// The log no longer matches memory; refuse further work rather
			// than risk committing appends the WAL never saw.
			g.broken = fmt.Errorf("rox: ingest wal append failed: %w", err)
			return g.broken
		}
	}
	g.counters.Append()
	g.updateGauges()
	return nil
}

// bufferRemote validates the fragment locally and queues it for the remote
// shard; Commit forwards the batch. The shard server owns durability for
// its own data, so remote appends are not written to the local WAL.
func (g *Ingester) bufferRemote(r *plan.Remote, xml string) error {
	if _, err := xmltree.ParseString("ingest", xml); err != nil {
		return err
	}
	key := r.Endpoint + "|" + r.Doc
	rb := g.remotes[key]
	if rb == nil {
		rb = &remoteBatch{endpoint: r.Endpoint, doc: r.Doc}
		g.remotes[key] = rb
	}
	rb.frags = append(rb.frags, shardrpc.IngestFragment{Frag: "ingest", XML: xml})
	g.counters.Append()
	return nil
}

// applyLocked parses the fragment and applies it to the target's overlay,
// establishing the overlay (or, for an unknown name, the document itself)
// first if needed.
func (g *Ingester) applyLocked(target, xml string) error {
	st := g.docs[target]
	if st == nil {
		st = &ingestDoc{}
		g.docs[target] = st
	}
	cat := g.e.catalog()
	if catIx, err := cat.Index(target); err == nil {
		// Rebase whenever someone else swapped the document under us — an
		// external reload, or our own state not yet attached. The overlay's
		// appends since its base was established are re-applied on top.
		if st.app == nil || (catIx != st.published && catIx != st.baseIx) {
			if err := st.rebase(catIx); err != nil {
				return err
			}
		}
	} else if st.app == nil {
		// Unknown name: the first fragment becomes the document (loading
		// B+f1+..+fk at once is the equivalence reference, with B empty).
		base, perr := xmltree.ParseString(target, xml)
		if perr != nil {
			return perr
		}
		st.app = xmltree.NewAppender(base)
		st.frags = append(st.frags, ingest.Append{Target: target, XML: xml})
		return nil
	}
	frag, err := xmltree.ParseString("ingest", xml)
	if err != nil {
		return err
	}
	if err := st.app.Append(frag); err != nil {
		return err
	}
	st.frags = append(st.frags, ingest.Append{Target: target, XML: xml})
	return nil
}

// rebase re-establishes the overlay on top of the given catalog index,
// re-applying every append this state has accumulated since its base.
func (st *ingestDoc) rebase(catIx *index.Index) error {
	baseIx := catIx
	if b := catIx.Base(); b != nil {
		baseIx = b
	}
	app := xmltree.NewAppender(catIx.Doc())
	for _, ap := range st.frags {
		frag, err := xmltree.ParseString("ingest", ap.XML)
		if err != nil {
			return err
		}
		if err := app.Append(frag); err != nil {
			return err
		}
	}
	st.app = app
	st.baseIx = baseIx
	st.published = catIx
	return nil
}

// Commit seals all pending appends as one batch and publishes them: remote
// buffers are forwarded to their shard servers first, then (with a WAL
// attached) a commit record is fsynced — the durability point — and finally
// every changed document is re-published in a single copy-on-write catalog
// swap, bumping each one's generation stamp. In-flight queries keep the
// snapshot they started on; no query ever observes part of a batch. Returns
// the WAL batch sequence (0 without a WAL). A Commit with nothing pending
// is a no-op.
func (g *Ingester) Commit(ctx context.Context) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commitLocked(ctx)
}

func (g *Ingester) commitLocked(ctx context.Context) (uint64, error) {
	if g.broken != nil {
		return 0, g.broken
	}
	// Forward remote batches before the local publish; a remote failure
	// fails the commit with all buffers intact for retry. Key order, so the
	// shard that fails (and the batches already flushed) are the same on
	// every run.
	for _, key := range sortedKeys(g.remotes) {
		rb := g.remotes[key]
		if _, err := g.e.remote.client.Ingest(ctx, rb.endpoint, rb.doc, &shardrpc.IngestRequest{Fragments: rb.frags}); err != nil {
			return 0, fmt.Errorf("rox: ingest into remote shard %q at %s: %w", rb.doc, rb.endpoint, err)
		}
		delete(g.remotes, key)
	}
	anyDirty := false
	for _, st := range g.docs {
		if st.dirty() > 0 {
			anyDirty = true
			break
		}
	}
	if !anyDirty {
		g.updateGauges()
		return g.lastSeq(), nil
	}
	var seq uint64
	if g.dir != nil {
		var err error
		if seq, err = g.dir.WAL().LogCommit(); err != nil {
			g.broken = fmt.Errorf("rox: ingest wal commit failed: %w", err)
			return 0, g.broken
		}
	}
	gen := g.publishLocked()
	g.counters.Commit(seq, gen)
	if g.compactAfter > 0 && g.totalDeltaNodes() >= g.compactAfter {
		if err := g.compactLocked(); err != nil {
			return seq, err
		}
	}
	g.updateGauges()
	return seq, nil
}

// publishLocked publishes every dirty overlay in one copy-on-write catalog
// swap, marks their appends committed, and returns the resulting catalog
// generation.
func (g *Ingester) publishLocked() uint64 {
	g.e.mu.Lock()
	cat := g.e.cat.Clone()
	// Name order: AddIndexed stamps each document with a fresh generation, so
	// the per-document stamps must be assigned in the same order on every
	// run — a WAL replay reproduces the pre-crash stamps exactly.
	for _, name := range sortedKeys(g.docs) {
		st := g.docs[name]
		if st.dirty() == 0 {
			continue
		}
		snap := st.app.Snapshot()
		var ix *index.Index
		if snap.Segmented() {
			if st.baseIx == nil {
				// Possible only for a document this ingester created whose
				// base was never indexed — establish the base index once.
				st.baseIx = index.New(snap.Flatten())
				ix = st.baseIx
			} else {
				ix = index.NewDelta(st.baseIx, snap)
			}
		} else if st.baseIx != nil && st.baseIx.Doc() == snap {
			ix = st.baseIx
		} else {
			ix = index.New(snap)
			st.baseIx = ix
		}
		cat.AddIndexed(ix)
		st.published = ix
		st.committed = len(st.frags)
	}
	g.e.cat = cat
	gen := cat.Generation()
	g.e.mu.Unlock()
	return gen
}

// Compact flattens every published overlay into a plain single-segment
// document with a freshly built index — written as a packed ROXD v2
// container when a durable directory is attached — publishes the compacted
// form, and truncates the WAL (crash-atomically, via the directory
// manifest). Pending uncommitted appends are committed first. Queries in
// flight keep their snapshot, exactly as across a Commit.
func (g *Ingester) Compact(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, err := g.commitLocked(ctx); err != nil {
		return err
	}
	err := g.compactLocked()
	g.updateGauges()
	return err
}

// compactLocked rewrites and re-publishes every overlay-bearing document.
// All pending appends must already be committed.
func (g *Ingester) compactLocked() error {
	type rewrite struct {
		name string
		ix   *index.Index
	}
	var rewrites []rewrite
	snaps := make(map[string]string)
	for _, name := range sortedKeys(g.docs) {
		st := g.docs[name]
		if st.deltaNodes() == 0 {
			continue
		}
		flat := st.app.Snapshot().Flatten()
		var ix *index.Index
		if g.dir != nil {
			path := g.dir.SnapshotFile(name)
			if err := index.WritePackedFile(path, index.New(flat)); err != nil {
				return fmt.Errorf("rox: compacting %q: %w", name, err)
			}
			var err error
			if ix, err = index.OpenPackedFile(path); err != nil {
				return fmt.Errorf("rox: compacting %q: %w", name, err)
			}
			snaps[name] = path
		} else {
			ix = index.New(flat)
		}
		rewrites = append(rewrites, rewrite{name: name, ix: ix})
	}
	if len(rewrites) == 0 {
		return nil
	}
	g.e.mu.Lock()
	cat := g.e.cat.Clone()
	for _, rw := range rewrites {
		cat.AddIndexed(rw.ix)
	}
	g.e.cat = cat
	g.e.mu.Unlock()
	for _, rw := range rewrites {
		st := g.docs[rw.name]
		st.app = xmltree.NewAppender(rw.ix.Doc())
		st.baseIx = rw.ix
		st.published = rw.ix
		st.frags = nil
		st.committed = 0
	}
	if g.dir != nil {
		if err := g.dir.CommitCompaction(snaps); err != nil {
			g.broken = fmt.Errorf("rox: ingest compaction failed to commit: %w", err)
			return g.broken
		}
	}
	g.counters.Compaction()
	return nil
}

// IngestStats is a point-in-time view of the ingest path for monitoring:
// WAL health, overlay sizes, and lifetime event counts.
type IngestStats struct {
	// Durable reports whether a WAL directory is attached; WALPath, WALSize,
	// WALAge and LastCommitSeq are zero without one.
	Durable bool
	WALPath string
	WALSize int64
	// WALAge is the age of the current WAL epoch — how long ago the log was
	// created or last truncated by a compaction.
	WALAge time.Duration
	// PendingDocs counts documents with appends not yet committed;
	// DeltaDocs/DeltaNodes describe the published overlays (documents
	// carrying a delta, total appended nodes) since the last compaction.
	PendingDocs int
	DeltaDocs   int
	DeltaNodes  int
	// LastCommitSeq is the WAL sequence of the last committed batch;
	// LastCommitGen the catalog generation its publish reached.
	LastCommitSeq uint64
	LastCommitGen uint64
	// Lifetime event counts.
	Appends, Commits, Compactions, ReplayedBatches int64
}

// Stats returns the ingester's current statistics. Safe to call concurrently
// with ingest operations and queries.
func (g *Ingester) Stats() IngestStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := g.counters.Snapshot()
	st := IngestStats{
		PendingDocs:     g.pendingDocs(),
		DeltaDocs:       g.deltaDocCount(),
		DeltaNodes:      g.totalDeltaNodes(),
		LastCommitSeq:   snap.LastCommitSeq,
		LastCommitGen:   snap.LastCommitGen,
		Appends:         snap.Appends,
		Commits:         snap.Commits,
		Compactions:     snap.Compactions,
		ReplayedBatches: snap.ReplayedBatches,
	}
	if g.dir != nil {
		st.Durable = true
		st.WALPath = g.dir.WAL().Path()
		st.WALSize = g.dir.WAL().Size()
		st.WALAge = g.dir.WAL().Age()
		st.LastCommitSeq = g.dir.WAL().Seq()
	}
	return st
}

// Close releases the durable directory (closing the WAL file). Uncommitted
// appends are discarded by the next OpenDir, exactly as after a crash.
func (g *Ingester) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dir == nil {
		return nil
	}
	err := g.dir.Close()
	g.dir = nil
	return err
}

// sortedKeys returns m's keys in sorted order: every map the ingester walks
// with observable side effects (generation stamps, error order, remote
// flushes) is walked deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (g *Ingester) lastSeq() uint64 {
	if g.dir != nil {
		return g.dir.WAL().Seq()
	}
	return 0
}

func (g *Ingester) pendingDocs() int {
	n := 0
	for _, st := range g.docs {
		if st.dirty() > 0 {
			n++
		}
	}
	return n
}

func (g *Ingester) deltaDocCount() int {
	n := 0
	for _, st := range g.docs {
		if st.deltaNodes() > 0 {
			n++
		}
	}
	return n
}

func (g *Ingester) totalDeltaNodes() int {
	n := 0
	for _, st := range g.docs {
		n += st.deltaNodes()
	}
	return n
}

func (g *Ingester) updateGauges() {
	var walBytes int64
	if g.dir != nil {
		walBytes = g.dir.WAL().Size()
	}
	g.counters.SetGauges(walBytes, g.pendingDocs(), g.deltaDocCount(), g.totalDeltaNodes())
}

// IngestShard implements the shard-server side of remote ingest (see
// shardrpc.Ingestor): append every fragment of the batch to the named
// document through the engine's shared Ingester and commit, returning the
// document's new generation stamp. Fragment errors fail the whole batch
// before the commit — nothing is half-applied.
func (e *Engine) IngestShard(ctx context.Context, doc string, req *shardrpc.IngestRequest) (*shardrpc.IngestResponse, error) {
	if len(req.Fragments) == 0 {
		return nil, &shardrpc.StatusError{Status: 400, Err: fmt.Errorf("rox: empty ingest batch")}
	}
	ing := e.Ingest()
	for _, f := range req.Fragments {
		if err := ing.Append(doc, f.XML); err != nil {
			return nil, &shardrpc.StatusError{Status: 400, Err: err}
		}
	}
	seq, err := ing.Commit(ctx)
	if err != nil {
		return nil, err
	}
	return &shardrpc.IngestResponse{
		Applied:    len(req.Fragments),
		Seq:        seq,
		Generation: e.catalog().DocGeneration(doc),
	}, nil
}
