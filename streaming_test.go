package rox

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// drainAll collects a cursor through the iterator adapter, failing the test
// on a stream error.
func drainAll(t *testing.T, rows *Rows, phase string) []string {
	t.Helper()
	items := []string{}
	for item, err := range rows.All() {
		if err != nil {
			t.Fatalf("%s: stream error: %v", phase, err)
		}
		items = append(items, item)
	}
	return items
}

// TestCursorProtocol pins the database/sql-style cursor contract on the
// single-catalog path: Next/Item iteration matches the legacy materialized
// Query, Err is nil after exhaustion, Close is idempotent, Stats counts the
// handed-out rows, and the All() iterator agrees.
func TestCursorProtocol(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXML("ppl.xml", shardXML(20, 20)); err != nil {
		t.Fatal(err)
	}
	const q = `for $p in doc("ppl.xml")//person[marker] return $p`
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.Execute(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		got = append(got, rows.Item())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after exhaustion: %v", err)
	}
	assertSameItems(t, "cursor drain", want.Items, got)
	st := rows.Stats()
	if st.Rows != len(got) || st.Scanned != len(got) || st.Truncated {
		t.Errorf("stats = Rows %d Scanned %d Truncated %v, want %d/%d/false",
			st.Rows, st.Scanned, st.Truncated, len(got), len(got))
	}
	if err := rows.Close(); err != nil {
		t.Errorf("Close after exhaustion: %v", err)
	}
	if rows.Next() {
		t.Error("Next after Close returned true")
	}

	rows2, err := e.Execute(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "All iterator", want.Items, drainAll(t, rows2, "All"))
}

// TestCursorEarlyCloseTruncates: closing a cursor mid-stream finalizes Stats
// with what was actually returned and marks the result truncated.
func TestCursorEarlyCloseTruncates(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXML("ppl.xml", shardXML(30, 30)); err != nil {
		t.Fatal(err)
	}
	rows, err := e.Execute(context.Background(), Request{Query: `for $p in doc("ppl.xml")//person[marker] return $p`})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := rows.Stats()
	if st.Rows != 5 || st.Scanned != 30 || !st.Truncated {
		t.Errorf("stats after early close = Rows %d Scanned %d Truncated %v, want 5/30/true",
			st.Rows, st.Scanned, st.Truncated)
	}

	// An aggregate cursor closed before its single item went out is
	// truncated too, even though Rows < Scanned holds trivially for folds.
	agg, err := e.Execute(context.Background(), Request{Query: `for $p in doc("ppl.xml")//person return count($p)`})
	if err != nil {
		t.Fatal(err)
	}
	agg.Close()
	if st := agg.Stats(); st.Rows != 0 || !st.Truncated {
		t.Errorf("aggregate early close: Rows=%d Truncated=%v, want 0/true", st.Rows, st.Truncated)
	}

	// Same on the scatter path: closing before the merged aggregate item.
	_, sharded := newXMarkEngines(t, 4)
	sagg, err := sharded.Execute(context.Background(), Request{Query: `for $p in collection("xmark")//person return count($p)`})
	if err != nil {
		t.Fatal(err)
	}
	sagg.Close()
	if st := sagg.Stats(); st.Rows != 0 || !st.Truncated {
		t.Errorf("scatter aggregate early close: Rows=%d Truncated=%v, want 0/true", st.Rows, st.Truncated)
	}
}

// limitWindow describes one limit/offset variant of the equivalence sweep.
type limitWindow struct {
	name          string
	limit, offset int
}

// TestLimitOffsetEquivalence is the streaming acceptance contract: for every
// tail shape (plain, order by ascending/descending, constructor) over the
// single catalog and 1-, 4- and 12-shard collections, a windowed query — via
// a `limit` clause in the text, via Request.Limit/Offset, and via
// Prepared.Execute(WithLimit/WithOffset) — returns exactly the full result's
// [offset, offset+limit) slice, byte for byte, on the cold run and on the
// plan-cache replay.
func TestLimitOffsetEquivalence(t *testing.T) {
	shapes := []struct {
		name, docQ, collQ string
	}{
		{
			name:  "plain",
			docQ:  `for $p in doc("xmark.xml")//person[education] return $p`,
			collQ: `for $p in collection("xmark")//person[education] return $p`,
		},
		{
			name:  "order by ascending",
			docQ:  `for $p in doc("xmark.xml")//person[education] order by $p/@id return $p`,
			collQ: `for $p in collection("xmark")//person[education] order by $p/@id return $p`,
		},
		{
			name:  "order by numeric descending",
			docQ:  `for $a in doc("xmark.xml")//open_auction where $a/current > 100 order by $a/current descending return $a`,
			collQ: `for $a in collection("xmark")//open_auction where $a/current > 100 order by $a/current descending return $a`,
		},
		{
			name:  "constructor",
			docQ:  `for $a in doc("xmark.xml")//open_auction[reserve], $b in $a/bidder return <hit>{$b}</hit>`,
			collQ: `for $a in collection("xmark")//open_auction[reserve], $b in $a/bidder return <hit>{$b}</hit>`,
		},
	}
	windows := []limitWindow{
		{"limit 5", 5, 0},
		{"limit 7 offset 3", 7, 3},
		{"offset only", 0, 4},
		{"limit past end", 100000, 0},
	}
	slice := func(items []string, w limitWindow) []string {
		lo := min(w.offset, len(items))
		hi := len(items)
		if w.limit > 0 && lo+w.limit < hi {
			hi = lo + w.limit
		}
		return items[lo:hi]
	}
	clause := func(q string, w limitWindow) string {
		if w.limit == 0 {
			// The grammar requires a count; emulate offset-only with a huge
			// limit so the text variant still exercises the clause.
			return fmt.Sprintf("%s limit %d offset %d", q, 1<<30, w.offset)
		}
		if w.offset == 0 {
			return fmt.Sprintf("%s limit %d", q, w.limit)
		}
		return fmt.Sprintf("%s limit %d offset %d", q, w.limit, w.offset)
	}

	for _, shards := range []int{1, 4, 12} {
		single, sharded := newXMarkEngines(t, shards)
		for _, shape := range shapes {
			for engName, pick := range map[string]struct {
				eng *Engine
				q   string
			}{
				"doc":        {single, shape.docQ},
				"collection": {sharded, shape.collQ},
			} {
				if engName == "doc" && shards != 1 {
					continue // the single-catalog side is shard-count-invariant
				}
				t.Run(fmt.Sprintf("%d-shard/%s/%s", shards, shape.name, engName), func(t *testing.T) {
					full, err := pick.eng.Query(pick.q)
					if err != nil {
						t.Fatal(err)
					}
					if len(full.Items) < 12 {
						t.Fatalf("degenerate corpus: only %d rows", len(full.Items))
					}
					for _, w := range windows {
						want := slice(full.Items, w)

						res, err := pick.eng.Query(clause(pick.q, w))
						if err != nil {
							t.Fatalf("%s clause: %v", w.name, err)
						}
						assertSameItems(t, w.name+" clause", want, res.Items)

						rows, err := pick.eng.Execute(context.Background(),
							Request{Query: pick.q, Limit: w.limit, Offset: w.offset})
						if err != nil {
							t.Fatalf("%s request: %v", w.name, err)
						}
						assertSameItems(t, w.name+" request", want, drainAll(t, rows, w.name))

						prep, err := pick.eng.Prepare(pick.q)
						if err != nil {
							t.Fatal(err)
						}
						for _, phase := range []string{"cold-or-warm", "replay"} {
							rows, err := prep.Execute(context.Background(),
								WithLimit(w.limit), WithOffset(w.offset))
							if err != nil {
								t.Fatalf("%s prepared %s: %v", w.name, phase, err)
							}
							assertSameItems(t, w.name+" prepared "+phase, want,
								drainAll(t, rows, w.name))
						}
					}
				})
			}
		}
	}
}

// TestLimitReplayAndDriftSharded extends the window contract through the
// plan-cache lifecycle on the scatter path: a prepared ordered top-k query
// over a sharded collection replays with zero sampling, survives a
// 10× reload of one shard (drift → that shard re-optimizes), and stays
// byte-identical to the single-catalog slice at every phase.
func TestLimitReplayAndDriftSharded(t *testing.T) {
	spans := [][2]int{{0, 30}, {100, 30}, {200, 30}}
	sharded := NewEngine()
	for i, sp := range spans {
		if err := sharded.LoadCollectionShardXML("ppl", fmt.Sprintf("ppl-%d.xml", i),
			pricedShardXML(sp[0], sp[1])); err != nil {
			t.Fatal(err)
		}
	}
	singleFor := func(spans [][2]int) *Engine {
		var sb strings.Builder
		sb.WriteString("<people>")
		for _, sp := range spans {
			inner := pricedShardXML(sp[0], sp[1])
			sb.WriteString(strings.TrimSuffix(strings.TrimPrefix(inner, "<people>"), "</people>"))
		}
		sb.WriteString("</people>")
		eng := NewEngine()
		if err := eng.LoadXML("ppl.xml", sb.String()); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	const docQ = `for $p in doc("ppl.xml")//person order by $p/salary descending return $p limit 10 offset 2`
	const collQ = `for $p in collection("ppl")//person order by $p/salary descending return $p limit 10 offset 2`

	prep, err := sharded.Prepare(collQ)
	if err != nil {
		t.Fatal(err)
	}
	single := singleFor(spans)
	want, err := single.Query(docQ)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "cold", want.Items, cold.Items)
	replay, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "replay", want.Items, replay.Items)
	if !replay.Stats.CacheHit || replay.Stats.SampleTuples != 0 {
		t.Errorf("replay: CacheHit=%v SampleTuples=%d, want hit with zero sampling",
			replay.Stats.CacheHit, replay.Stats.SampleTuples)
	}

	// Reload the middle shard with 10× the data — far beyond the drift ratio.
	spans[1] = [2]int{100, 300}
	if err := sharded.LoadCollectionShardXML("ppl", "ppl-1.xml",
		pricedShardXML(spans[1][0], spans[1][1])); err != nil {
		t.Fatal(err)
	}
	want, err = singleFor(spans).Query(docQ)
	if err != nil {
		t.Fatal(err)
	}
	drift, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "drift", want.Items, drift.Items)
	if !drift.Stats.Reoptimized {
		t.Error("reloaded shard did not re-optimize")
	}
	settled, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "settled", want.Items, settled.Items)
	if !settled.Stats.CacheHit || settled.Stats.SampleTuples != 0 {
		t.Errorf("settled: CacheHit=%v SampleTuples=%d", settled.Stats.CacheHit, settled.Stats.SampleTuples)
	}
}

// TestScatterEarlyTermination is the early-exit acceptance contract: `limit
// 10` over a 12-shard collection returns the first ten items, reports the
// truncation per shard, and cancels the shard work the window made
// unnecessary instead of computing the full union.
func TestScatterEarlyTermination(t *testing.T) {
	_, sharded := newXMarkEngines(t, 12)
	const fullQ = `for $p in collection("xmark")//person return $p`
	full, err := sharded.Query(fullQ)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sharded.Query(fullQ + ` limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "limit 10 prefix", full.Items[:10], res.Items)
	if res.Stats.Rows != 10 {
		t.Errorf("Rows = %d, want 10", res.Stats.Rows)
	}
	if !res.Stats.Truncated {
		t.Error("top-level Stats.Truncated not set")
	}
	if len(res.Stats.Shards) != 12 {
		t.Fatalf("ShardStats count = %d, want 12", len(res.Stats.Shards))
	}
	// Every shard holds ~17 of the 200 persons, well past the 10-row
	// per-shard cap, so each one must report truncated pulls — whether it
	// completed its capped tail or was canceled outright by the gather.
	for _, sh := range res.Stats.Shards {
		if !sh.Stats.Truncated {
			t.Errorf("shard %s reports no truncated pulls under limit 10 (Rows=%d Scanned=%d)",
				sh.Shard, sh.Stats.Rows, sh.Stats.Scanned)
		}
	}
	// The scanned rollup can never exceed the full union, and the emitted
	// rows stay within the windowed pull budget per shard (cap + channel
	// slack), never the full per-shard result. The wall-clock effect of the
	// cancellation is pinned by BenchmarkLimitScatter* against the
	// full-drain baseline, where the per-shard work is big enough to
	// dominate scheduling noise.
	if res.Stats.Scanned > full.Stats.Scanned {
		t.Errorf("windowed Scanned = %d exceeds full %d", res.Stats.Scanned, full.Stats.Scanned)
	}
	for _, sh := range res.Stats.Shards {
		if sh.Stats.Rows > 10 {
			t.Errorf("shard %s emitted %d rows past the 10-row cap", sh.Shard, sh.Stats.Rows)
		}
	}
}

// TestCursorCancelMidStreamSingle cancels the context after three items on
// the single-catalog path: the cursor must surface ctx.Err(), and the plan
// the run discovered must stay installed (the join work already happened).
func TestCursorCancelMidStreamSingle(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXML("ppl.xml", shardXML(50, 50)); err != nil {
		t.Fatal(err)
	}
	const q = `for $p in doc("ppl.xml")//person[marker] return $p`
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.Execute(ctx, Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close() // idempotent after exhaustion; keeps every path finished
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("Next %d returned false early: %v", i, rows.Err())
		}
	}
	cancel()
	if rows.Next() {
		t.Fatal("Next after cancel returned true")
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	st := rows.Stats()
	if st.Rows != 3 || !st.Truncated {
		t.Errorf("stats after cancel = Rows %d Truncated %v, want 3/true", st.Rows, st.Truncated)
	}
	if cs := e.CacheStats(); cs.Size == 0 {
		t.Error("canceled cursor run installed no plan")
	}
	warm, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit || warm.Stats.SampleTuples != 0 {
		t.Errorf("query after canceled cursor: CacheHit=%v SampleTuples=%d, want replay",
			warm.Stats.CacheHit, warm.Stats.SampleTuples)
	}
}

// TestCursorCancelMidStreamSharded cancels a scatter mid-stream: the cursor
// surfaces ctx.Err(), every shard goroutine exits, and the shards that
// completed before the cancel keep their installed plans.
func TestCursorCancelMidStreamSharded(t *testing.T) {
	_, sharded := newXMarkEngines(t, 4)
	const q = `for $p in collection("xmark")//person return $p`
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := sharded.Execute(ctx, Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close() // idempotent after exhaustion; keeps every path finished
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("Next %d returned false early: %v", i, rows.Err())
		}
	}
	cancel()
	for rows.Next() {
		// A few buffered items may still arrive; the stream must still end
		// with the context error.
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	testutil.WaitGoroutines(t, base)
	if cs := sharded.CacheStats(); cs.Size == 0 {
		t.Error("no shard plan survived the canceled scatter (the first shard completed its join)")
	}
}

// TestCursorLeakReleasesGoroutines: a scatter cursor abandoned without Close
// is cleaned up by the runtime — shard goroutines exit once the handle is
// garbage collected.
func TestCursorLeakReleasesGoroutines(t *testing.T) {
	_, sharded := newXMarkEngines(t, 4)
	base := runtime.NumGoroutine()
	rows, err := sharded.Execute(context.Background(), Request{Query: `for $p in collection("xmark")//person return $p`})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	rows = nil // abandon without Close
	_ = rows
	testutil.WaitGoroutines(t, base)
}

// TestPoolCursorSlotLifecycle: a pooled cursor holds its admission slot until
// it finishes — Close releases it synchronously, and a cursor leaked without
// Close releases it through the garbage-collection cleanup.
func TestPoolCursorSlotLifecycle(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXML("ppl.xml", shardXML(10, 10)); err != nil {
		t.Fatal(err)
	}
	const q = `for $p in doc("ppl.xml")//person[marker] return $p`
	pool := NewPool(eng, 1)

	// While a cursor is open, the single slot is busy.
	rows, err := pool.Execute(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	busyCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if _, err := pool.Query(busyCtx, q); err == nil {
		t.Fatal("second query admitted while a cursor holds the only slot")
	}
	cancel()
	// Close releases the slot immediately.
	rows.Close()
	if _, err := pool.Query(context.Background(), q); err != nil {
		t.Fatalf("query after Close: %v", err)
	}

	// A leaked cursor must release its slot via the GC cleanup.
	rows, err = pool.Execute(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	rows = nil // leak: no Close
	_ = rows
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_, err := pool.Query(ctx, q)
		cancel()
		if err == nil {
			break // the cleanup released the leaked slot
		}
		if time.Now().After(deadline) {
			t.Fatal("leaked cursor never released its pool slot")
		}
	}
}

// TestStatsRowsScannedSemantics pins the Rows/Scanned split on every path:
// Rows counts returned items (post-window), Scanned the join output before
// truncation — cold, replay, static and scatter, plus the aggregate shapes.
func TestStatsRowsScannedSemantics(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXML("ppl.xml", pricedShardXML(0, 40)); err != nil {
		t.Fatal(err)
	}
	const windowed = `for $p in doc("ppl.xml")//person return $p limit 5 offset 2`
	check := func(phase string, st Stats, rows, scanned int, truncated bool) {
		t.Helper()
		if st.Rows != rows || st.Scanned != scanned || st.Truncated != truncated {
			t.Errorf("%s: Rows=%d Scanned=%d Truncated=%v, want %d/%d/%v",
				phase, st.Rows, st.Scanned, st.Truncated, rows, scanned, truncated)
		}
	}

	cold, err := e.Query(windowed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Items) != 5 {
		t.Fatalf("windowed items = %d", len(cold.Items))
	}
	check("cold", cold.Stats, 5, 40, true)
	if cold.Stats.CacheHit {
		t.Error("cold run claims a cache hit")
	}

	replay, err := e.Query(windowed)
	if err != nil {
		t.Fatal(err)
	}
	check("replay", replay.Stats, 5, 40, true)
	if !replay.Stats.CacheHit || replay.Stats.SampleTuples != 0 {
		t.Errorf("replay: CacheHit=%v SampleTuples=%d", replay.Stats.CacheHit, replay.Stats.SampleTuples)
	}

	static, err := e.QueryStatic(windowed)
	if err != nil {
		t.Fatal(err)
	}
	check("static", static.Stats, 5, 40, true)

	agg, err := e.Query(`for $p in doc("ppl.xml")//person return sum($p/salary)`)
	if err != nil {
		t.Fatal(err)
	}
	check("aggregate", agg.Stats, 1, 40, false)

	unlimited, err := e.Query(`for $p in doc("ppl.xml")//person return $p`)
	if err != nil {
		t.Fatal(err)
	}
	check("unlimited", unlimited.Stats, 40, 40, false)

	_, sharded := newXMarkEngines(t, 4)
	scatter, err := sharded.Query(`for $p in collection("xmark")//person[education] order by $p/@id return $p limit 6`)
	if err != nil {
		t.Fatal(err)
	}
	if scatter.Stats.Rows != 6 || !scatter.Stats.Truncated {
		t.Errorf("scatter: Rows=%d Truncated=%v, want 6/true", scatter.Stats.Rows, scatter.Stats.Truncated)
	}
	if scatter.Stats.Scanned < 6 {
		t.Errorf("scatter Scanned = %d, want >= 6", scatter.Stats.Scanned)
	}
	var shardScanned int
	for _, sh := range scatter.Stats.Shards {
		shardScanned += sh.Stats.Scanned
	}
	if scatter.Stats.Scanned != shardScanned {
		t.Errorf("scatter Scanned rollup %d != shard sum %d", scatter.Stats.Scanned, shardScanned)
	}
}

// TestWindowValidation covers the failure surface of the programmatic
// window: negative values, and windows on aggregate returns (which yield one
// item by construction) wherever they can be requested.
func TestWindowValidation(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXML("ppl.xml", shardXML(10, 10)); err != nil {
		t.Fatal(err)
	}
	const aggQ = `for $p in doc("ppl.xml")//person return count($p)`
	//roxvet:ignore the call must fail validation; no cursor exists on the error path
	if _, err := e.Execute(context.Background(), Request{Query: `for $p in doc("ppl.xml")//person return $p`, Limit: -1}); err == nil {
		t.Error("negative limit accepted")
	}
	//roxvet:ignore the call must fail validation; no cursor exists on the error path
	if _, err := e.Execute(context.Background(), Request{Query: `for $p in doc("ppl.xml")//person return $p`, Offset: -2}); err == nil {
		t.Error("negative offset accepted")
	}
	//roxvet:ignore the call must fail validation; no cursor exists on the error path
	if _, err := e.Execute(context.Background(), Request{Query: aggQ, Limit: 3}); err == nil || !strings.Contains(err.Error(), "aggregate") {
		t.Errorf("window on aggregate request: err = %v", err)
	}
	if _, err := e.Query(aggQ + ` limit 3`); err == nil || !strings.Contains(err.Error(), "aggregate") {
		t.Errorf("limit clause on aggregate: err = %v", err)
	}
	prep, err := e.Prepare(aggQ)
	if err != nil {
		t.Fatal(err)
	}
	//roxvet:ignore the call must fail validation; no cursor exists on the error path
	if _, err := prep.Execute(context.Background(), WithLimit(3)); err == nil || !strings.Contains(err.Error(), "aggregate") {
		t.Errorf("WithLimit on prepared aggregate: err = %v", err)
	}
	// The aggregate still runs fine without a window.
	if res, err := prep.Query(); err != nil || res.Items[0] != "10" {
		t.Errorf("aggregate run: %v %v", res, err)
	}
}

// TestTailChangeWithLimitIsCacheMiss: the window is part of the plan-cache
// key (replay expectations are projection-sensitive), so changing only the
// window is a miss — while the Join Graph fingerprint stays identical and
// both windows replay once warm.
func TestTailChangeWithLimitIsCacheMiss(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXML("ppl.xml", shardXML(20, 20)); err != nil {
		t.Fatal(err)
	}
	const q = `for $p in doc("ppl.xml")//person[marker] return $p`
	p1, err := e.Prepare(q + ` limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Prepare(q + ` limit 6`)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Error("different windows share a cache key")
	}
	if p1.comp.Graph.Fingerprint() != p2.comp.Graph.Fingerprint() {
		t.Error("window changed the Join Graph fingerprint — plans would not transfer")
	}
	if _, err := p1.Query(); err != nil {
		t.Fatal(err)
	}
	second, err := p2.Query()
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheHit {
		t.Error("window change replayed the other window's entry")
	}
	warm, err := p2.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit {
		t.Error("warm windowed query missed its own entry")
	}
}
