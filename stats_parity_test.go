package rox

import (
	"context"
	"fmt"
	"testing"
)

// TestQueryStatsParity is the stats-parity audit of the query entry points:
// Execute (drained manually), Query, QueryContext and Prepared.Query are all
// the same pipeline behind different conveniences, so for the same corpus and
// seed they must report identical Rows, Scanned, Truncated and per-shard
// breakdowns. Each path runs on its own fresh engine so plan-cache state
// cannot leak between them.
func TestQueryStatsParity(t *testing.T) {
	spans := [][2]int{{0, 25}, {100, 25}, {200, 25}}
	newEng := func(t *testing.T) *Engine {
		t.Helper()
		eng := NewEngine()
		for i, sp := range spans {
			if err := eng.LoadCollectionShardXML("ppl", fmt.Sprintf("ppl-%d.xml", i),
				pricedShardXML(sp[0], sp[1])); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.LoadXML("ppl.xml", pricedShardXML(0, 50)); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	queries := []struct {
		name, q  string
		agg      bool // aggregates fold Scanned tuples into 1 row by design
		racyScan bool // early-terminated scatter: Scanned depends on cancellation timing
	}{
		{"single document", `for $p in doc("ppl.xml")//person return $p`, false, false},
		{"document windowed", `for $p in doc("ppl.xml")//person return $p limit 7 offset 3`, false, false},
		{"document aggregate", `for $p in doc("ppl.xml")//person return sum($p/salary)`, true, false},
		{"collection plain", `for $p in collection("ppl")//person return $p`, false, false},
		{"collection ordered", `for $p in collection("ppl")//person order by $p/age return $p`, false, false},
		// A limit window over a scatter cancels the remaining shards the
		// moment it fills; how far each shard got before the cancellation
		// landed is scheduling-dependent, so Scanned and the per-shard
		// breakdown are not comparable across runs for this shape.
		{"collection windowed", `for $p in collection("ppl")//person return $p limit 7 offset 3`, false, true},
		{"collection aggregate", `for $p in collection("ppl")//person return avg($p/salary)`, true, false},
	}

	type outcome struct {
		items []string
		stats Stats
	}
	paths := []struct {
		name string
		run  func(t *testing.T, eng *Engine, q string) outcome
	}{
		{"Execute", func(t *testing.T, eng *Engine, q string) outcome {
			rows, err := eng.Execute(context.Background(), Request{Query: q})
			if err != nil {
				t.Fatal(err)
			}
			defer rows.Close()
			var items []string
			for rows.Next() {
				items = append(items, rows.Item())
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			rows.Close()
			return outcome{items: items, stats: rows.Stats()}
		}},
		{"Query", func(t *testing.T, eng *Engine, q string) outcome {
			res, err := eng.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			return outcome{items: res.Items, stats: res.Stats}
		}},
		{"QueryContext", func(t *testing.T, eng *Engine, q string) outcome {
			res, err := eng.QueryContext(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			return outcome{items: res.Items, stats: res.Stats}
		}},
		{"Prepared.Query", func(t *testing.T, eng *Engine, q string) outcome {
			prep, err := eng.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prep.Query()
			if err != nil {
				t.Fatal(err)
			}
			return outcome{items: res.Items, stats: res.Stats}
		}},
	}

	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			var ref outcome
			for i, p := range paths {
				got := p.run(t, newEng(t), q.q)
				if i == 0 {
					ref = got
					continue
				}
				assertSameItems(t, p.name, ref.items, got.items)
				if got.stats.Rows != ref.stats.Rows {
					t.Errorf("%s: Rows = %d, Execute reported %d", p.name, got.stats.Rows, ref.stats.Rows)
				}
				if !q.racyScan && got.stats.Scanned != ref.stats.Scanned {
					t.Errorf("%s: Scanned = %d, Execute reported %d", p.name, got.stats.Scanned, ref.stats.Scanned)
				}
				if got.stats.Truncated != ref.stats.Truncated {
					t.Errorf("%s: Truncated = %v, Execute reported %v", p.name, got.stats.Truncated, ref.stats.Truncated)
				}
				if len(got.stats.Shards) != len(ref.stats.Shards) {
					t.Fatalf("%s: %d shard stats, Execute reported %d",
						p.name, len(got.stats.Shards), len(ref.stats.Shards))
				}
				for j, sh := range got.stats.Shards {
					want := ref.stats.Shards[j]
					if sh.Shard != want.Shard {
						t.Errorf("%s: shard %d = %s, Execute reported %s",
							p.name, j, sh.Shard, want.Shard)
					}
					if q.racyScan {
						continue
					}
					if sh.Stats.Scanned != want.Stats.Scanned ||
						sh.Stats.Rows != want.Stats.Rows || sh.Stats.Truncated != want.Stats.Truncated {
						t.Errorf("%s: shard %d = {%s rows=%d scanned=%d trunc=%v}, Execute reported {%s rows=%d scanned=%d trunc=%v}",
							p.name, j, sh.Shard, sh.Stats.Rows, sh.Stats.Scanned, sh.Stats.Truncated,
							want.Shard, want.Stats.Rows, want.Stats.Scanned, want.Stats.Truncated)
					}
				}
			}
			// Scanned/Rows/Truncated are mutually consistent on every path
			// (aggregates excepted: their fold consumes Scanned tuples into
			// one row without that being a truncation).
			if !q.agg && ref.stats.Truncated != (ref.stats.Rows < ref.stats.Scanned) {
				t.Errorf("Execute: Truncated=%v with Rows=%d Scanned=%d",
					ref.stats.Truncated, ref.stats.Rows, ref.stats.Scanned)
			}
		})
	}
}
