// Benchmarks for the live-ingest path: the append hot loop, query latency
// over a base+delta overlay (the incremental index's concat accessors), and
// warm-restart WAL replay. The contract is that appends cost O(fragment),
// a modest delta leaves query latency on par with a flat document, and
// replay is bounded by the un-compacted batch count, not corpus size.
package rox

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// benchIngestBase builds a people document with n persons, and
// benchIngestFrag one appendable person, in the same shape the soak and
// scenario suites use.
func benchIngestBase(n int) string {
	var sb strings.Builder
	sb.WriteString("<people>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<person id="b%d"><name>n%d</name><age>%d</age></person>`, i, i%7, 20+i%50)
	}
	sb.WriteString("</people>")
	return sb.String()
}

func benchIngestFrag(i int) string {
	return fmt.Sprintf(`<person id="a%d"><name>m%d</name><age>%d</age></person>`, i, i%7, 20+i%50)
}

// BenchmarkIngestAppend measures the in-memory append hot loop: parse one
// fragment and extend the overlay document and delta index. Commits land
// every 128 appends so the uncommitted tail stays batch-sized, as it would
// under a serving ingest endpoint.
func BenchmarkIngestAppend(b *testing.B) {
	eng := NewEngine(WithSeed(7))
	if err := eng.LoadXML("people.xml", benchIngestBase(500)); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Append("people.xml", benchIngestFrag(i)); err != nil {
			b.Fatal(err)
		}
		if i%128 == 127 {
			if _, err := eng.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQueryWithDelta measures ordered-query latency over a document
// whose index is a packed-era base plus a committed 10% ingest delta — the
// steady state of a serving node between compactions.
func BenchmarkQueryWithDelta(b *testing.B) {
	eng := NewEngine(WithSeed(7))
	if err := eng.LoadXML("people.xml", benchIngestBase(500)); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := eng.Append("people.xml", benchIngestFrag(i)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := eng.Commit(ctx); err != nil {
		b.Fatal(err)
	}
	const q = `for $p in doc("people.xml")//person order by $p/age return $p limit 10`
	if _, err := eng.Query(q); err != nil {
		b.Fatal(err) // warm the plan cache once
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures the warm restart: open an ingest directory
// holding 32 committed single-fragment batches and replay them onto a
// freshly loaded corpus, one catalog publish per batch.
func BenchmarkWALReplay(b *testing.B) {
	base := benchIngestBase(500)
	walDir := b.TempDir()
	{
		eng := NewEngine(WithSeed(7))
		if err := eng.LoadXML("people.xml", base); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.OpenIngestDir(walDir); err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 32; i++ {
			if err := eng.Append("people.xml", benchIngestFrag(i)); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Ingest().Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(WithSeed(7))
		if err := eng.LoadXML("people.xml", base); err != nil {
			b.Fatal(err)
		}
		n, err := eng.OpenIngestDir(walDir)
		if err != nil {
			b.Fatal(err)
		}
		if n != 32 {
			b.Fatalf("replayed %d batches, want 32", n)
		}
		if err := eng.Ingest().Close(); err != nil {
			b.Fatal(err)
		}
	}
}
