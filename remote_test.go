package rox

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shardrpc"
	"repro/internal/testutil"
)

// swapExec is a shardrpc.Executor that delegates to a swappable engine — the
// test stand-in for a shard-server process that reloads data or restarts
// (fresh engine, empty plan cache) behind a stable URL.
type swapExec struct {
	mu  sync.Mutex
	eng *Engine
}

func (s *swapExec) swap(e *Engine) {
	s.mu.Lock()
	s.eng = e
	s.mu.Unlock()
}

func (s *swapExec) current() *Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

func (s *swapExec) ExecuteShard(ctx context.Context, shard string, req *shardrpc.ExecRequest) (shardrpc.ShardRun, error) {
	return s.current().ExecuteShard(ctx, shard, req)
}

func (s *swapExec) ShardInventory() []shardrpc.ShardInfo {
	return s.current().ShardInventory()
}

// newShardServer mounts a shard-server surface (the same shardrpc handlers
// cmd/roxserve mounts) over eng behind an httptest server.
func newShardServer(t *testing.T, eng *Engine) (*swapExec, *httptest.Server) {
	t.Helper()
	ex := &swapExec{eng: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shards", shardrpc.HandleInventory(ex))
	mux.HandleFunc("POST /v1/shards/{shard}/execute", shardrpc.HandleExecute(ex))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ex, ts
}

// pricedSingleEngine loads the concatenation of the given pricedShardXML
// spans as one document "ppl.xml".
func pricedSingleEngine(t *testing.T, spans [][2]int) *Engine {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<people>")
	for _, sp := range spans {
		inner := pricedShardXML(sp[0], sp[1])
		sb.WriteString(strings.TrimSuffix(strings.TrimPrefix(inner, "<people>"), "</people>"))
	}
	sb.WriteString("</people>")
	eng := NewEngine()
	if err := eng.LoadXML("ppl.xml", sb.String()); err != nil {
		t.Fatal(err)
	}
	return eng
}

// pricedServerEngine loads the given spans as plain documents ppl-<i>.xml —
// what a shard server holds (the server serves documents; collection
// membership lives on the coordinator).
func pricedServerEngine(t *testing.T, idx []int, spans [][2]int) *Engine {
	t.Helper()
	eng := NewEngine()
	for _, i := range idx {
		if err := eng.LoadXML(fmt.Sprintf("ppl-%d.xml", i), pricedShardXML(spans[i][0], spans[i][1])); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// remoteEquivQueries is the tail-shape matrix of the remote equivalence
// contract: plain, ordered (asc/desc, string keys), aggregate, and a
// limit+offset window, each as a doc()/collection() pair.
var remoteEquivQueries = []struct {
	name, docQ, collQ string
}{
	{"plain", `for $p in doc("ppl.xml")//person return $p`,
		`for $p in collection("ppl")//person return $p`},
	{"ordered by age desc", `for $p in doc("ppl.xml")//person order by $p/age descending return $p`,
		`for $p in collection("ppl")//person order by $p/age descending return $p`},
	{"ordered by string id", `for $p in doc("ppl.xml")//person order by $p/@id return $p`,
		`for $p in collection("ppl")//person order by $p/@id return $p`},
	{"sum of decimal salaries", `for $p in doc("ppl.xml")//person return sum($p/salary)`,
		`for $p in collection("ppl")//person return sum($p/salary)`},
	{"avg of decimal salaries", `for $p in doc("ppl.xml")//person return avg($p/salary)`,
		`for $p in collection("ppl")//person return avg($p/salary)`},
	{"limit offset window", `for $p in doc("ppl.xml")//person order by $p/age return $p limit 10 offset 5`,
		`for $p in collection("ppl")//person order by $p/age return $p limit 10 offset 5`},
}

// TestRemoteCollectionEquivalence is the distributed acceptance contract: a
// collection scattered over remote shard servers — and a mixed local+remote
// registration — returns results byte-identical to the single-catalog and
// all-local-sharded evaluations, for every tail shape, on the cold scatter
// AND on the prepared replay (which must be a full per-shard cache hit with
// zero sampling on both sides of the wire).
func TestRemoteCollectionEquivalence(t *testing.T) {
	spans := [][2]int{{0, 30}, {100, 30}, {200, 30}}
	single := pricedSingleEngine(t, spans)

	local := NewEngine()
	for i, sp := range spans {
		if err := local.LoadCollectionShardXML("ppl", fmt.Sprintf("ppl-%d.xml", i),
			pricedShardXML(sp[0], sp[1])); err != nil {
			t.Fatal(err)
		}
	}

	// Remote: shards 0,1 on server A, shard 2 on server B; discovery orders a
	// server's inventory by name, endpoints keep argument order.
	_, tsA := newShardServer(t, pricedServerEngine(t, []int{0, 1}, spans))
	_, tsB := newShardServer(t, pricedServerEngine(t, []int{2}, spans))
	remote := NewEngine()
	if err := remote.LoadCollectionRemote(context.Background(), "ppl",
		[]Endpoint{{URL: tsA.URL}, {URL: tsB.URL}}); err != nil {
		t.Fatal(err)
	}

	// Mixed: shard 0 local, shards 1,2 remote.
	_, tsC := newShardServer(t, pricedServerEngine(t, []int{1, 2}, spans))
	mixed := NewEngine()
	if err := mixed.LoadCollectionShardXML("ppl", "ppl-0.xml",
		pricedShardXML(spans[0][0], spans[0][1])); err != nil {
		t.Fatal(err)
	}
	if err := mixed.LoadCollectionRemote(context.Background(), "ppl",
		[]Endpoint{{URL: tsC.URL}}); err != nil {
		t.Fatal(err)
	}

	configs := []struct {
		name string
		eng  *Engine
	}{{"local-sharded", local}, {"remote", remote}, {"mixed", mixed}}
	for _, q := range remoteEquivQueries {
		want, err := single.Query(q.docQ)
		if err != nil {
			t.Fatalf("%s: single-catalog query: %v", q.name, err)
		}
		for _, cfg := range configs {
			t.Run(cfg.name+"/"+q.name, func(t *testing.T) {
				prep, err := cfg.eng.Prepare(q.collQ)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := prep.Query()
				if err != nil {
					t.Fatalf("cold scatter: %v", err)
				}
				assertSameItems(t, "cold scatter", want.Items, cold.Items)
				if len(cold.Stats.Shards) != 3 {
					t.Errorf("ShardStats count = %d, want 3", len(cold.Stats.Shards))
				}
				replay, err := prep.Query()
				if err != nil {
					t.Fatalf("prepared replay: %v", err)
				}
				assertSameItems(t, "prepared replay", want.Items, replay.Items)
				if !replay.Stats.CacheHit || replay.Stats.SampleTuples != 0 {
					t.Errorf("replay: CacheHit=%v SampleTuples=%d, want per-shard hits with zero sampling",
						replay.Stats.CacheHit, replay.Stats.SampleTuples)
				}
				for _, sh := range replay.Stats.Shards {
					if !sh.Stats.CacheHit {
						t.Errorf("shard %s replay missed its server-side cache", sh.Shard)
					}
				}
			})
		}
	}
}

// TestRemoteDriftReoptimization is the drift leg of the distributed contract:
// after a remote shard server reloads one document with 10x the data, the
// coordinator's prepared statements must return results matching the new
// corpus, the reloaded shard must re-optimize on its server, and the
// untouched shards must keep replaying their cached plans.
func TestRemoteDriftReoptimization(t *testing.T) {
	spans := [][2]int{{0, 30}, {100, 30}, {200, 30}}
	exA, tsA := newShardServer(t, pricedServerEngine(t, []int{0, 1}, spans))
	_, tsB := newShardServer(t, pricedServerEngine(t, []int{2}, spans))
	coord := NewEngine()
	if err := coord.LoadCollectionRemote(context.Background(), "ppl",
		[]Endpoint{{URL: tsA.URL}, {URL: tsB.URL}}); err != nil {
		t.Fatal(err)
	}

	queries := []struct{ name, collQ, docQ string }{
		{"ordered", `for $p in collection("ppl")//person order by $p/age descending return $p`,
			`for $p in doc("ppl.xml")//person order by $p/age descending return $p`},
		{"sum", `for $p in collection("ppl")//person return sum($p/salary)`,
			`for $p in doc("ppl.xml")//person return sum($p/salary)`},
	}
	preps := make([]*Prepared, len(queries))
	for i, q := range queries {
		p, err := coord.Prepare(q.collQ)
		if err != nil {
			t.Fatal(err)
		}
		preps[i] = p
		if _, err := p.Query(); err != nil { // warm both sides
			t.Fatalf("%s warm-up: %v", q.name, err)
		}
	}

	// Reload ppl-1.xml on server A with 10x the data — the server's document
	// generation moves, so the coordinator's next request replays-and-verifies
	// and the drift machinery re-optimizes on the server.
	spans[1] = [2]int{100, 300}
	if err := exA.current().LoadXML("ppl-1.xml",
		pricedShardXML(spans[1][0], spans[1][1])); err != nil {
		t.Fatal(err)
	}
	single := pricedSingleEngine(t, spans)
	for i, q := range queries {
		want, err := single.Query(q.docQ)
		if err != nil {
			t.Fatalf("%s single after reload: %v", q.name, err)
		}
		drift, err := preps[i].Query()
		if err != nil {
			t.Fatalf("%s drift query: %v", q.name, err)
		}
		assertSameItems(t, q.name+" drift", want.Items, drift.Items)
		if !drift.Stats.Reoptimized {
			t.Errorf("%s: reloaded remote shard did not re-optimize", q.name)
		}
		for _, sh := range drift.Stats.Shards {
			if sh.Shard != "ppl-1.xml" && (!sh.Stats.CacheHit || sh.Stats.SampleTuples != 0) {
				t.Errorf("%s: untouched remote shard %s lost its cached plan", q.name, sh.Shard)
			}
		}
		settled, err := preps[i].Query()
		if err != nil {
			t.Fatalf("%s settled query: %v", q.name, err)
		}
		assertSameItems(t, q.name+" settled", want.Items, settled.Items)
		if !settled.Stats.CacheHit || settled.Stats.SampleTuples != 0 {
			t.Errorf("%s settled run missed the cache: CacheHit=%v SampleTuples=%d",
				q.name, settled.Stats.CacheHit, settled.Stats.SampleTuples)
		}
	}
}

// TestRemotePlanHintSeedsRestartedServer pins the plan-hint transfer: after a
// shard server restarts cold (fresh engine, empty plan cache, same data), the
// coordinator's hint — the replay payload the old server returned — lets the
// new server replay without any sampling, instead of re-discovering the plan.
func TestRemotePlanHintSeedsRestartedServer(t *testing.T) {
	spans := [][2]int{{0, 40}, {100, 40}}
	ex, ts := newShardServer(t, pricedServerEngine(t, []int{0, 1}, spans))
	coord := NewEngine()
	if err := coord.LoadCollectionRemote(context.Background(), "ppl",
		[]Endpoint{{URL: ts.URL}}); err != nil {
		t.Fatal(err)
	}
	prep, err := coord.Prepare(`for $p in collection("ppl")//person order by $p/age return $p`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.SampleTuples == 0 {
		t.Fatal("cold run did no sampling — the test premise is broken")
	}

	// "Restart" the server: same documents in the same load order (so the
	// generation stamps match), but an empty plan cache.
	ex.swap(pricedServerEngine(t, []int{0, 1}, spans))

	seeded, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "hint-seeded run", first.Items, seeded.Items)
	if !seeded.Stats.CacheHit || seeded.Stats.SampleTuples != 0 {
		t.Errorf("restarted server sampled despite the coordinator's hint: CacheHit=%v SampleTuples=%d",
			seeded.Stats.CacheHit, seeded.Stats.SampleTuples)
	}
}

// TestRemoteShardServerDown covers the unreachable-endpoint surface: under
// the default fail-fast policy the query fails with the endpoint in the
// error; under ShardRetryThenPartial it completes on the shards that
// answered, marks the result truncated and records the failure in the dead
// shard's ShardStats.
func TestRemoteShardServerDown(t *testing.T) {
	spans := [][2]int{{0, 30}, {100, 30}}
	_, ts := newShardServer(t, pricedServerEngine(t, []int{1}, spans))
	deadURL := ts.URL
	ts.Close() // registered explicitly below, so no discovery call needed

	build := func(opts ...Option) *Engine {
		eng := NewEngine(opts...)
		if err := eng.LoadCollectionShardXML("ppl", "ppl-0.xml",
			pricedShardXML(spans[0][0], spans[0][1])); err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadCollectionRemote(context.Background(), "ppl",
			[]Endpoint{{URL: deadURL, Shards: []string{"ppl-1.xml"}}}); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	const q = `for $p in collection("ppl")//person return $p`

	t.Run("fail-fast", func(t *testing.T) {
		_, err := build().Query(q)
		if err == nil {
			t.Fatal("query over a dead shard server succeeded")
		}
		if !strings.Contains(err.Error(), "ppl-1.xml") {
			t.Errorf("error %v does not name the failing shard", err)
		}
	})
	t.Run("retry-then-partial", func(t *testing.T) {
		res, err := build(WithShardRetry(ShardRetryThenPartial)).Query(q)
		if err != nil {
			t.Fatalf("partial policy failed the query: %v", err)
		}
		if len(res.Items) != spans[0][1] {
			t.Errorf("partial result has %d items, want the %d local ones", len(res.Items), spans[0][1])
		}
		if !res.Stats.Truncated {
			t.Error("partial result not marked Truncated")
		}
		var found bool
		for _, sh := range res.Stats.Shards {
			if sh.Shard == "ppl-1.xml" {
				found = true
				if sh.Err == "" {
					t.Error("dead shard's ShardStats carries no error")
				}
			}
		}
		if !found {
			t.Error("dead shard missing from ShardStats")
		}
	})
}

// fakeShardServer mounts a hand-rolled execute handler — for fault shapes a
// real engine cannot produce (mid-stream drops, stalls, endless streams).
func fakeShardServer(t *testing.T, execute http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards/{shard}/execute", execute)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRemoteMidStreamFailure: a shard server dying mid-stream (items out, no
// done report) fails the query under fail-fast; under the partial policy the
// query completes truncated — without retrying, since the dead shard's items
// already entered the merge and a restart could duplicate them.
func TestRemoteMidStreamFailure(t *testing.T) {
	var calls int
	var mu sync.Mutex
	ts := fakeShardServer(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		fl, _ := w.(http.Flusher)
		for i := 0; i < 2; i++ {
			item := fmt.Sprintf("<x>%d</x>", i)
			if err := enc.Encode(shardrpc.Message{Item: &item}); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		panic(http.ErrAbortHandler) // kill the connection without a done report
	})
	build := func(opts ...Option) *Engine {
		eng := NewEngine(opts...)
		if err := eng.LoadCollectionShardXML("c", "c-0.xml", `<r><x>local</x></r>`); err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadCollectionRemote(context.Background(), "c",
			[]Endpoint{{URL: ts.URL, Shards: []string{"c-1.xml"}}}); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	const q = `for $x in collection("c")//x return $x`

	t.Run("fail-fast", func(t *testing.T) {
		_, err := build().Query(q)
		if err == nil {
			t.Fatal("query over a mid-stream drop succeeded")
		}
	})
	t.Run("partial keeps merged items", func(t *testing.T) {
		mu.Lock()
		calls = 0
		mu.Unlock()
		res, err := build(WithShardRetry(ShardRetryThenPartial)).Query(q)
		if err != nil {
			t.Fatalf("partial policy failed the query: %v", err)
		}
		if len(res.Items) != 3 { // 1 local + the 2 that made it over the wire
			t.Errorf("partial result has %d items, want 3", len(res.Items))
		}
		if !res.Stats.Truncated {
			t.Error("partial result not marked Truncated")
		}
		mu.Lock()
		n := calls
		mu.Unlock()
		if n != 1 {
			t.Errorf("shard was executed %d times; items already merged must not retry", n)
		}
	})
}

// TestRemoteSlowShardDeadline: a stalled shard server cannot hold a query
// past its context deadline — the coordinator gives up with
// context.DeadlineExceeded and the in-flight request is released.
func TestRemoteSlowShardDeadline(t *testing.T) {
	ts := fakeShardServer(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // coordinator gave up
		case <-time.After(10 * time.Second):
		}
	})
	eng := NewEngine()
	if err := eng.LoadCollectionRemote(context.Background(), "c",
		[]Endpoint{{URL: ts.URL, Shards: []string{"c-0.xml"}}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := eng.QueryContext(ctx, `for $x in collection("c")//x return $x`)
	if err == nil {
		t.Fatal("query over a stalled shard server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

// TestRemoteCancelOnWindowFill pins the distributed limit push-down: once the
// gather's window fills, the coordinator closes the remote response body,
// which cancels the shard server's request context — remote work the merge no
// longer needs actually stops, it does not stream into the void.
func TestRemoteCancelOnWindowFill(t *testing.T) {
	testutil.CheckGoroutines(t)
	canceled := make(chan struct{})
	var once sync.Once
	ts := fakeShardServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		fl, _ := w.(http.Flusher)
		for i := 0; ; i++ {
			item := fmt.Sprintf("<x>%d</x>", i)
			if err := enc.Encode(shardrpc.Message{Item: &item}); err != nil {
				once.Do(func() { close(canceled) })
				return
			}
			if fl != nil {
				fl.Flush()
			}
			select {
			case <-r.Context().Done():
				once.Do(func() { close(canceled) })
				return
			case <-time.After(time.Millisecond):
			}
		}
	})
	eng := NewEngine()
	if err := eng.LoadCollectionRemote(context.Background(), "c",
		[]Endpoint{{URL: ts.URL, Shards: []string{"c-0.xml"}}}); err != nil {
		t.Fatal(err)
	}
	rows, err := eng.Execute(context.Background(),
		Request{Query: `for $x in collection("c")//x return $x`, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(testutil.DrainCursor(t, rows)); n != 5 {
		t.Errorf("window returned %d items, want 5", n)
	}
	if !rows.Stats().Truncated {
		t.Error("windowed scatter not marked Truncated")
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("remote shard request was never canceled after the window filled")
	}
}

// TestRemoteErrorTypes: a shard server's pre-stream rejection surfaces as a
// typed *shardrpc.RemoteError carrying the HTTP status, so API layers (like
// cmd/roxserve's statusFor) can classify cluster faults without string
// matching.
func TestRemoteErrorTypes(t *testing.T) {
	spans := [][2]int{{0, 10}}
	_, ts := newShardServer(t, pricedServerEngine(t, []int{0}, spans))
	eng := NewEngine()
	// Register a shard name the server does not hold: the server answers 404.
	if err := eng.LoadCollectionRemote(context.Background(), "ppl",
		[]Endpoint{{URL: ts.URL, Shards: []string{"nope.xml"}}}); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Query(`for $p in collection("ppl")//person return $p`)
	if err == nil {
		t.Fatal("query over an unknown remote shard succeeded")
	}
	var re *shardrpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *shardrpc.RemoteError", err)
	}
	if re.Status != http.StatusNotFound {
		t.Errorf("RemoteError.Status = %d, want 404", re.Status)
	}
}

// TestLoadCollectionRemoteValidation covers the registration failure surface.
func TestLoadCollectionRemoteValidation(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadCollectionRemote(context.Background(), "c",
		[]Endpoint{{URL: "  "}}); err == nil {
		t.Error("empty endpoint URL accepted")
	}
	// An empty inventory registers nothing and says so.
	_, ts := newShardServer(t, NewEngine())
	if err := eng.LoadCollectionRemote(context.Background(), "c",
		[]Endpoint{{URL: ts.URL}}); err == nil || !strings.Contains(err.Error(), "no documents") {
		t.Errorf("empty-inventory registration err = %v, want no-documents failure", err)
	}
	// Discovery against a dead endpoint fails the registration.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if err := eng.LoadCollectionRemote(context.Background(), "c",
		[]Endpoint{{URL: dead.URL}}); err == nil {
		t.Error("discovery against a dead endpoint succeeded")
	}
}
