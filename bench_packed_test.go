// Cold-start and steady-state benchmarks for the packed on-disk store: the
// acceptance contract of the mmap container is that loading a packed shard
// (map + attach persistent indices) beats re-shredding the XML (parse +
// O(n) index build) by a wide margin, while query latency over the mapped
// backing stays on par with the heap.
package rox

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// benchColdQuery is an ordered XMark query touching elements, attributes and
// text so a cold engine exercises every index family.
const benchColdQuery = `for $p in doc("xmark.xml")//person[education] order by $p/@id return $p`

// coldStartFixture writes the XMark benchmark corpus once per process as
// both an XML file and a packed container, returning the two paths.
func coldStartFixture(b *testing.B) (xmlPath, packedPath string) {
	b.Helper()
	cfg := datagen.DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 400, 240, 200
	d := datagen.XMark(cfg)
	dir := b.TempDir()
	xmlPath = filepath.Join(dir, "xmark.xml")
	f, err := os.Create(xmlPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := xmltree.Serialize(f, d, d.Root()); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	packedPath = filepath.Join(dir, "xmark.roxd")
	if err := index.WritePackedFile(packedPath, index.New(d)); err != nil {
		b.Fatal(err)
	}
	return xmlPath, packedPath
}

// BenchmarkColdStartShred measures the legacy cold start: parse the XML
// corpus and build every index in memory, then answer one query.
func BenchmarkColdStartShred(b *testing.B) {
	xmlPath, _ := coldStartFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(WithSeed(7))
		if err := eng.LoadFile("xmark.xml", xmlPath); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Query(benchColdQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartPacked measures the packed cold start: map the container,
// attach the persistent index sections, answer the same query. No shredding,
// no O(n) index build.
func BenchmarkColdStartPacked(b *testing.B) {
	_, packedPath := coldStartFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewEngine(WithSeed(7))
		if err := eng.LoadPacked(packedPath); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Query(benchColdQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryHeapShred is the steady-state baseline: repeated queries
// against a heap-built catalog.
func BenchmarkQueryHeapShred(b *testing.B) {
	xmlPath, _ := coldStartFixture(b)
	eng := NewEngine(WithSeed(7))
	if err := eng.LoadFile("xmark.xml", xmlPath); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(benchColdQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryPackedMapped runs the same steady-state load over the mapped
// backing — the zero-copy columns and mapped postings must hold their own
// against the heap.
func BenchmarkQueryPackedMapped(b *testing.B) {
	_, packedPath := coldStartFixture(b)
	eng := NewEngine(WithSeed(7))
	if err := eng.LoadPacked(packedPath); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(benchColdQuery); err != nil {
			b.Fatal(err)
		}
	}
}
