// Concurrency tests for the shared-catalog engine: one loaded corpus served
// by many simultaneous queries must (a) be data-race free (run with -race),
// (b) return exactly the sequential results, and (c) keep fixed seeds
// reproducible per call.
package rox

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// concurrencyQueries mixes the query shapes the engine supports: step-only,
// predicate, and a cross-document equi-join.
var concurrencyQueries = []string{
	`for $p in doc("people.xml")//person return $p`,
	`for $n in doc("people.xml")//person/name return $n`,
	`for $o in doc("orders.xml")//order[./total/text() > 50] return $o`,
	`for $p in doc("people.xml")//person,
	     $o in doc("orders.xml")//order
	 where $o/@person = $p/@id
	 return $o`,
}

// baseline captures what a query must return regardless of concurrency.
type baseline struct {
	items []string
	plan  string
}

func sequentialBaselines(t *testing.T, e *Engine) (rox, static []baseline) {
	t.Helper()
	for _, q := range concurrencyQueries {
		r, err := e.Query(q)
		if err != nil {
			t.Fatalf("baseline Query(%s): %v", q, err)
		}
		rox = append(rox, baseline{items: r.Items, plan: r.Stats.Plan})
		s, err := e.QueryStatic(q)
		if err != nil {
			t.Fatalf("baseline QueryStatic(%s): %v", q, err)
		}
		static = append(static, baseline{items: s.Items, plan: s.Stats.Plan})
	}
	return rox, static
}

// TestConcurrentQueriesMatchSequential fires N goroutines × M queries (mixed
// Query/QueryStatic) against one engine and asserts every result — items and
// the chosen plan — matches the sequential baseline. With a fixed engine
// seed, every call draws the same sample stream, so even the ROX plans are
// reproducible per call.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	e := engine(t)
	roxBase, staticBase := sequentialBaselines(t, e)

	const goroutines = 8
	const iters = 6
	errs := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(concurrencyQueries)
				q := concurrencyQueries[qi]
				useStatic := (g+i)%2 == 1
				var res *Result
				var err error
				var want baseline
				if useStatic {
					res, err = e.QueryStatic(q)
					want = staticBase[qi]
				} else {
					res, err = e.Query(q)
					want = roxBase[qi]
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if !reflect.DeepEqual(res.Items, want.items) {
					errs <- fmt.Errorf("goroutine %d iter %d (static=%v): items %v, want %v",
						g, i, useStatic, res.Items, want.items)
					return
				}
				if res.Stats.Plan != want.plan {
					errs <- fmt.Errorf("goroutine %d iter %d (static=%v): plan %q, want %q",
						g, i, useStatic, res.Stats.Plan, want.plan)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentLoadAndQuery exercises the copy-on-write load path: loads of
// new documents race with queries over the already-loaded corpus. Queries
// must keep seeing a consistent catalog snapshot throughout.
func TestConcurrentLoadAndQuery(t *testing.T) {
	e := engine(t)
	want, err := e.Query(concurrencyQueries[3])
	if err != nil {
		t.Fatal(err)
	}
	const extras = 30
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < extras; i++ {
			name := fmt.Sprintf("extra-%d.xml", i)
			if err := e.LoadXML(name, "<r><x>1</x></r>"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		res, err := e.Query(concurrencyQueries[3])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Items, want.Items) {
			t.Fatalf("iteration %d: items changed under concurrent load: %v", i, res.Items)
		}
	}
	wg.Wait()
	if n := len(e.Documents()); n != extras+2 {
		t.Fatalf("documents = %d, want %d", n, extras+2)
	}
}

// TestQueryContextCancel verifies that a canceled context aborts the
// evaluation with the context's error.
func TestQueryContextCancel(t *testing.T) {
	e := engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, concurrencyQueries[3]); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := e.QueryStaticContext(ctx, concurrencyQueries[3]); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryStaticContext on canceled ctx: err = %v, want context.Canceled", err)
	}
	// A live context evaluates normally.
	res, err := e.QueryContext(context.Background(), concurrencyQueries[0])
	if err != nil || len(res.Items) != 3 {
		t.Fatalf("QueryContext live: res = %v, err = %v", res, err)
	}
}

// TestPoolBoundedConcurrency runs many queries through a small pool and
// checks results, admission accounting and the aggregate statistics.
func TestPoolBoundedConcurrency(t *testing.T) {
	e := engine(t)
	p := NewPool(e, 2)
	if p.Workers() != 2 {
		t.Fatalf("workers = %d", p.Workers())
	}
	want, err := e.Query(concurrencyQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var res *Result
			var err error
			if i%2 == 0 {
				res, err = p.Query(ctx, concurrencyQueries[0])
			} else {
				res, err = p.QueryStatic(ctx, concurrencyQueries[0])
			}
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Items, want.Items) {
				errs <- fmt.Errorf("pool query %d: items = %v", i, res.Items)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.Aggregator().Queries(); got != n {
		t.Fatalf("aggregator queries = %d, want %d", got, n)
	}
	if p.Aggregator().Total().Tuples == 0 {
		t.Fatal("aggregator recorded no work")
	}
}

// TestPoolCanceledBeforeStart: a pool query whose context is already done
// fails with the context error, whether it is waiting for a slot or about to
// evaluate.
func TestPoolCanceledBeforeStart(t *testing.T) {
	e := engine(t)
	p := NewPool(e, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Query(ctx, concurrencyQueries[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("pool query on canceled ctx: err = %v", err)
	}
}
