package rox

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

const peopleXML = `<people>
	<person id="p1"><name>Alice</name><city>Amsterdam</city></person>
	<person id="p2"><name>Bob</name><city>Enschede</city></person>
	<person id="p3"><name>Carol</name><city>Amsterdam</city></person>
</people>`

const ordersXML = `<orders>
	<order person="p1"><total>10</total></order>
	<order person="p3"><total>250</total></order>
	<order person="p1"><total>99</total></order>
</orders>`

func engine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(WithSeed(7))
	if err := e.LoadXML("people.xml", peopleXML); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadXML("orders.xml", ordersXML); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineSimpleQuery(t *testing.T) {
	e := engine(t)
	res, err := e.Query(`for $p in doc("people.xml")//person return $p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(res.Items))
	}
	if !strings.Contains(res.Items[0], "Alice") {
		t.Errorf("first item = %s", res.Items[0])
	}
	if res.Stats.Rows != 3 || res.Stats.Plan == "" {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestEngineJoinQuery(t *testing.T) {
	e := engine(t)
	res, err := e.Query(`
		for $p in doc("people.xml")//person,
		    $o in doc("orders.xml")//order
		where $o/@person = $p/@id
		return $o`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Fatalf("items = %d, want 3: %v", len(res.Items), res.Items)
	}
	for _, it := range res.Items {
		if !strings.Contains(it, "order") {
			t.Errorf("unexpected item %s", it)
		}
	}
	if res.Stats.SampleTuples == 0 {
		t.Errorf("ROX run recorded no sampling work")
	}
}

func TestEnginePredicateQuery(t *testing.T) {
	e := engine(t)
	res, err := e.Query(`
		for $o in doc("orders.xml")//order[./total/text() > 50]
		return $o`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(res.Items))
	}
}

func TestEngineStaticMatchesROX(t *testing.T) {
	q := `
		for $p in doc("people.xml")//person,
		    $o in doc("orders.xml")//order
		where $o/@person = $p/@id
		return $p`
	e := engine(t)
	rox, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := e.QueryStatic(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rox.Items) != len(stat.Items) {
		t.Fatalf("ROX %d items, static %d", len(rox.Items), len(stat.Items))
	}
	for i := range rox.Items {
		if rox.Items[i] != stat.Items[i] {
			t.Errorf("item %d differs:\n%s\n%s", i, rox.Items[i], stat.Items[i])
		}
	}
}

func TestEngineExplain(t *testing.T) {
	e := engine(t)
	s, err := e.Explain(`for $p in doc("people.xml")//person/name return $p`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"person", "name", "JoinGraph"} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain missing %q:\n%s", want, s)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e := engine(t)
	if _, err := e.Query(`this is not xquery`); err == nil {
		t.Errorf("garbage query should fail")
	}
	if _, err := e.Query(`for $p in doc("missing.xml")//x return $p`); err == nil {
		t.Errorf("query over unloaded document should fail")
	}
	if err := e.LoadXML("bad.xml", "<a><b></a>"); err == nil {
		t.Errorf("malformed XML should fail to load")
	}
}

func TestEngineOptions(t *testing.T) {
	e := NewEngine(WithSampleSize(25), WithSeed(3),
		WithOptimizerOptions(core.Options{Tau: 25, Greedy: true}))
	if err := e.LoadXML("people.xml", peopleXML); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`for $p in doc("people.xml")//person return $p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Errorf("items = %d", len(res.Items))
	}
}

func TestEngineWithGeneratedXMark(t *testing.T) {
	cfg := datagen.DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 120, 100, 80
	e := NewEngine()
	e.LoadDocument(datagen.XMark(cfg))
	res, err := e.Query(`
		let $d := doc("xmark.xml")
		for $o in $d//open_auction[.//current/text() < 145],
		    $p in $d//person[.//province]
		where $o//bidder//personref/@person = $p/@id
		return $p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Errorf("XMark query returned nothing")
	}
	for _, it := range res.Items[:1] {
		if !strings.Contains(it, "person") || !strings.Contains(it, "province") {
			t.Errorf("returned person lacks province: %s", it)
		}
	}
}

func TestLoadFromReader(t *testing.T) {
	e := NewEngine()
	if err := e.Load("r.xml", strings.NewReader("<a><b/></a>")); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`for $b in doc("r.xml")//b return $b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0] != "<b/>" {
		t.Errorf("items = %v", res.Items)
	}
}

func TestQueryOrderSemantics(t *testing.T) {
	// Result items must follow document order of the outer for variable.
	e := engine(t)
	res, err := e.Query(`for $p in doc("people.xml")//person/name return $p`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Alice", "Bob", "Carol"}
	if len(res.Items) != 3 {
		t.Fatalf("items = %v", res.Items)
	}
	for i, w := range want {
		if !strings.Contains(res.Items[i], w) {
			t.Errorf("item %d = %s, want %s", i, res.Items[i], w)
		}
	}
}
