package rox

// This file is the streaming half of the public API: the Rows cursor behind
// Engine.Execute, Prepared.Execute and Pool.Execute, and the row sources the
// execution paths plug into it. The cursor owns the post-join result
// incrementally — items are serialized (and, for collection queries, merged
// across shards) one Next at a time — which is what lets a `limit 10` query
// stop after ten items instead of materializing the full result first. See
// the "Streaming execution and limit pushdown" section of DESIGN.md.

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// Request describes one evaluation for Engine.Execute or Pool.Execute: the
// query text plus execution knobs that previously each had a dedicated
// method. The zero value of everything but Query is the default ROX path.
type Request struct {
	// Query is the XQuery text.
	Query string
	// Static evaluates with the classical compile-time baseline instead of
	// the ROX run-time optimizer (the old QueryStatic path). Static
	// evaluation does not support collection() queries.
	Static bool
	// Limit, when positive, caps the number of returned items; Offset skips
	// that many items first. A non-zero Limit or Offset overrides any
	// `limit ... offset ...` clause in the query text itself — the
	// programmatic window wins, which is what a paginating caller wants.
	// Negative values are an error; both zero means "no window beyond the
	// query's own".
	Limit int
	// Offset is the number of result items skipped before the first
	// returned item.
	Offset int
}

// ExecOption tunes one Prepared.Execute call.
type ExecOption func(*execOpts)

type execOpts struct {
	limit, offset int
	windowed      bool
}

// WithLimit caps the number of items the cursor returns; n <= 0 means no
// cap. Together with WithOffset this overrides any limit clause compiled
// into the prepared text, so one Prepared serves every page of a paginated
// result.
func WithLimit(n int) ExecOption {
	return func(o *execOpts) { o.limit = n; o.windowed = true }
}

// WithOffset skips the first n items of the result.
func WithOffset(n int) ExecOption {
	return func(o *execOpts) { o.offset = n; o.windowed = true }
}

// requestWindow validates a programmatic limit/offset pair and turns it into
// a tail window; (0, 0) means none (nil spec).
func requestWindow(limit, offset int) (*plan.LimitSpec, error) {
	if limit < 0 {
		return nil, fmt.Errorf("rox: negative limit %d", limit)
	}
	if offset < 0 {
		return nil, fmt.Errorf("rox: negative offset %d", offset)
	}
	if limit == 0 && offset == 0 {
		return nil, nil
	}
	return &plan.LimitSpec{Count: limit, Offset: offset}, nil
}

// Rows is a streaming query result cursor, in the style of database/sql:
//
//	rows, err := eng.Execute(ctx, rox.Request{Query: q})
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		use(rows.Item())
//	}
//	if err := rows.Err(); err != nil { ... }
//
// or, with the Go 1.23 iterator adapter:
//
//	for item, err := range rows.All() { ... }
//
// Items are produced incrementally: serialization — and for collection
// queries the scatter-gather shard merge — happens one Next at a time, and
// closing the cursor early cancels whatever shard work is still running. A
// Rows must not be used from multiple goroutines concurrently. An abandoned
// cursor that is garbage-collected without Close releases its resources (and
// its Pool admission slot) via a runtime cleanup, but relying on that trades
// promptness for convenience — Close deterministically.
type Rows struct {
	c *rowsCore
}

// rowsCore is the shared cursor state. It is split from Rows so the leak
// cleanup registered on the Rows handle can reference it (runtime.AddCleanup
// forbids the cleanup argument to be the handle itself).
type rowsCore struct {
	src   rowSource
	env   *plan.Env
	sw    metrics.Stopwatch
	item  string
	err   error
	stats Stats

	mu     sync.Mutex
	done   bool
	hooks  []func(rec *metrics.Recorder, err error)
	unhook func() // stops the leak cleanup once finished
}

// rowSource produces the cursor's items. Implementations are single-consumer
// and are driven only through rowsCore.
type rowSource interface {
	// next returns the next item; ok = false ends the stream, with err as
	// the terminal error (nil for normal exhaustion).
	next() (item string, ok bool, err error)
	// finalize folds end-of-stream statistics into st and releases any
	// resources (shard goroutines, context). Called exactly once, after the
	// stream ended or the cursor was closed; st.Rows already holds the
	// number of items handed out.
	finalize(st *Stats)
}

// newRows wraps a source into a cursor. stats carries the execution-phase
// statistics known up front (plan, cache outcome, tuple costs); the cursor
// adds Rows/Scanned/Truncated/Elapsed as the stream progresses. The returned
// cursor self-closes if it becomes unreachable without Close, so an
// abandoned cursor cannot leak shard goroutines or pool slots.
func newRows(env *plan.Env, sw metrics.Stopwatch, stats Stats, src rowSource) *Rows {
	c := &rowsCore{src: src, env: env, sw: sw, stats: stats}
	r := &Rows{c: c}
	cleanup := runtime.AddCleanup(r, func(c *rowsCore) { c.finish(nil) }, c)
	c.unhook = func() { cleanup.Stop() }
	return r
}

// Next advances to the next item, returning false when the stream ends —
// either exhausted, failed (see Err) or closed. The first Next triggers the
// first serialization (and, on the scatter path, the first shard merge).
func (r *Rows) Next() bool {
	// KeepAlive pins the handle for the duration of the call: without it the
	// collector may see the handle dead after `r.c` is loaded and run the
	// leak cleanup's finish concurrently with the in-flight src.next.
	defer runtime.KeepAlive(r)
	c := r.c
	if c.done {
		return false
	}
	item, ok, err := c.src.next()
	if !ok {
		c.finish(err)
		return false
	}
	c.item = item
	c.stats.Rows++
	return true
}

// Item returns the item Next advanced to: the serialized XML of one result
// (or the single rendered value of an aggregate query).
func (r *Rows) Item() string {
	defer runtime.KeepAlive(r) // see Next
	return r.c.item
}

// Err returns the terminal stream error: nil after normal exhaustion or
// Close, the context's error when the evaluation was canceled mid-stream,
// or the evaluation failure that ended the stream.
func (r *Rows) Err() error {
	defer runtime.KeepAlive(r) // see Next
	return r.c.err
}

// Close ends the stream early: remaining shard work is canceled, resources
// are released, and Stats is finalized with what was actually done. Close is
// idempotent and safe after exhaustion; it returns Err.
func (r *Rows) Close() error {
	defer runtime.KeepAlive(r) // see Next
	r.c.finish(nil)
	return r.c.err
}

// Stats reports the evaluation statistics gathered so far. The counters are
// final once the stream ended (Next returned false or Close was called);
// before that, Rows counts the items handed out and the scatter-gather
// rollups (Shards, Scanned) are not yet populated.
func (r *Rows) Stats() Stats {
	defer runtime.KeepAlive(r) // see Next
	return r.c.stats
}

// All returns a single-use iterator over the remaining items, closing the
// cursor when the loop ends. A mid-stream failure yields one final
// ("", err) pair — callers that range over All must check the error value.
func (r *Rows) All() iter.Seq2[string, error] {
	return func(yield func(string, error) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.Item(), nil) {
				return
			}
		}
		if err := r.Err(); err != nil {
			yield("", err)
		}
	}
}

// collect drains the cursor into the materialized Result shape of the
// legacy Query methods.
func (r *Rows) collect() (*Result, error) {
	defer r.Close()
	items := []string{}
	for r.Next() {
		items = append(items, r.Item())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &Result{Items: items, Stats: r.Stats()}, nil
}

// onFinish registers a hook run exactly once when the stream ends (normal
// exhaustion, failure, Close, or the leak cleanup). Hooks receive the
// query's recorder and the terminal error; Pool uses this to release its
// admission slot and fold the cost into its aggregator.
func (c *rowsCore) onFinish(h func(rec *metrics.Recorder, err error)) {
	c.mu.Lock()
	if !c.done {
		c.hooks = append(c.hooks, h)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	h(c.env.Rec, c.err)
}

// finish ends the stream once: records the terminal error, finalizes the
// source (which cancels and drains outstanding shard work), stamps the
// remaining statistics and runs the finish hooks.
func (c *rowsCore) finish(err error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	c.mu.Unlock()
	if err != nil {
		c.err = err
	}
	c.src.finalize(&c.stats)
	c.stats.Elapsed = c.sw.Elapsed()
	c.mu.Lock()
	hooks := c.hooks
	c.hooks = nil
	unhook := c.unhook
	c.unhook = nil
	c.mu.Unlock()
	if unhook != nil {
		unhook()
	}
	for _, h := range hooks {
		h(c.env.Rec, c.err)
	}
}

// relRows streams the rows of a finished single-catalog evaluation: the join
// has fully materialized (that is ROX's execution model), but each item's
// serialization is deferred to its Next call, so a window or an early Close
// never renders rows it does not return. The relation arrives already
// windowed by the tail; scanned is the pre-window cardinality.
type relRows struct {
	ctx     context.Context
	comp    *xquery.Compiled
	rel     *table.Relation
	row     int
	scanned int
}

func (s *relRows) next() (string, bool, error) {
	if err := s.ctx.Err(); err != nil {
		return "", false, err
	}
	if s.rel == nil || s.row >= s.rel.NumRows() {
		return "", false, nil
	}
	item := renderItem(s.comp, s.rel, s.row)
	s.row++
	return item, true, nil
}

func (s *relRows) finalize(st *Stats) {
	st.Scanned = s.scanned
	if st.Rows < st.Scanned {
		st.Truncated = true
	}
	s.rel = nil
}

// itemsRows streams a pre-rendered item list — the single item of an
// aggregate query, whose fold already consumed the whole relation. scanned
// is the folded tuple cardinality.
type itemsRows struct {
	ctx     context.Context
	items   []string
	i       int
	scanned int
}

func (s *itemsRows) next() (string, bool, error) {
	if err := s.ctx.Err(); err != nil {
		return "", false, err
	}
	if s.i >= len(s.items) {
		return "", false, nil
	}
	item := s.items[s.i]
	s.i++
	return item, true, nil
}

func (s *itemsRows) finalize(st *Stats) {
	st.Scanned = s.scanned
	if st.Rows < len(s.items) {
		// The stream was cut before every rendered item went out (an early
		// Close or cancellation before the aggregate's single item).
		st.Truncated = true
	}
}

// renderItem serializes one result row: the return expression's variables,
// optionally wrapped in the constructor element.
func renderItem(comp *xquery.Compiled, rel *table.Relation, row int) string {
	ret := comp.Return
	var sb strings.Builder
	if ret.Elem != "" {
		sb.WriteString("<" + ret.Elem + ">")
	}
	for _, v := range ret.Vars {
		vertex := comp.Vars[v]
		sb.WriteString(xmltree.SerializeString(rel.Doc(vertex), rel.Column(vertex)[row]))
	}
	if ret.Elem != "" {
		sb.WriteString("</" + ret.Elem + ">")
	}
	return sb.String()
}
