package rox

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/shardrpc"
	"repro/internal/xquery"
)

// This file is the shard-execution contract of the scatter-gather: the
// ShardBackend interface, its in-process and HTTP implementations, and the
// engine's server half (ExecuteShard) that lets a roxserve in shard-server
// role serve the HTTP side. The gather in shard.go is backend-agnostic — it
// merges shardStream channels and never learns where the items came from.

// ShardBackend executes a collection query against one shard: rebind the
// compiled graph to the shard document, run the full ROX pipeline (plan-cache
// lookup → replay or sampling optimizer → drift verification) against the
// shard's own generation stamp, and stream the serialized result — items with
// their order-by keys when the query sorts, or a single partial-aggregate
// fold state — into the gather's channels, honoring ctx cancellation. The
// end-of-stream report carries the shard's Stats, its generation stamp, and
// the executed plan's replay payload.
//
// Two implementations exist: the in-process localBackend (shards indexed in
// this engine's catalog) and the HTTP httpBackend (shards registered with
// LoadCollectionRemote and served by a remote roxserve in shard-server role).
// The interface is sealed — the run method is unexported because shardStream
// is — so external packages pick backends by how they register shards, not by
// implementing this.
type ShardBackend interface {
	// Kind names the backend ("local" or "http") for diagnostics.
	Kind() string
	// run executes one shard and streams into st. It must close st.items and
	// send exactly one done report (before the close) on every path.
	run(ctx context.Context, x *shardExec, st *shardStream)
}

// shardExec is one shard's execution order: everything a backend needs to run
// a ForShard-rebound query, for either transport.
type shardExec struct {
	coll  string // collection name in the compiled graph
	shard string // shard document name
	// gen is the generation stamp cached plans validate against: the shard's
	// registration stamp locally; remotely the serving document's own stamp
	// (stamped on every response).
	gen    uint64
	remote *plan.Remote  // non-nil for http shards: where the data lives
	cat    *plan.Catalog // catalog snapshot the query runs against (local)
	// comp is the compiled query with the per-shard limit window already
	// applied, not yet rebound to the shard document.
	comp *xquery.Compiled
	// query and shardLimit re-express comp for the wire: the HTTP backend
	// ships text + window (compilation is deterministic, so the server
	// rebuilds the identical graph) instead of a serialized graph.
	query      string
	shardLimit int
	baseFP     string // base plan-cache key; "" = caching disabled
	interrupt  func() error
}

// localBackend runs shards in-process over the engine's own catalog: the
// original scatter path of shard.go, byte-identical.
type localBackend struct {
	e *Engine
}

// Kind names the backend.
func (b *localBackend) Kind() string { return "local" }

// run evaluates the query over one local shard and streams the result:
// acquire an engine-wide fan-out slot, rebind the compiled graph to the shard
// document, run the cached-execution pipeline against the shard's own
// generation stamp (so a reload of this shard invalidates exactly this
// shard's cached plans and no others), release the slot, then serialize the
// shard's rows one by one into the bounded item channel. The done report is
// always sent before the item channel closes.
func (b *localBackend) run(ctx context.Context, x *shardExec, st *shardStream) {
	e := b.e
	defer close(st.items)
	sw := metrics.Start()
	senv := plan.NewQueryEnv(x.cat, metrics.NewRecorder(), e.seed)
	senv.Interrupt = x.interrupt
	abort := func(err error) {
		st.done <- shardDone{
			err: err,
			rec: senv.Rec,
			gen: x.gen,
			stats: Stats{
				ExecTuples:   senv.Rec.CostOf(metrics.PhaseExecute).Tuples,
				SampleTuples: senv.Rec.CostOf(metrics.PhaseSample).Tuples,
				Elapsed:      sw.Elapsed(),
				Truncated:    true,
			},
		}
	}
	if err := e.shardLim.Acquire(ctx); err != nil {
		abort(err)
		return
	}
	scomp := x.comp.ForShard(x.coll, x.shard)
	fp := ""
	if x.baseFP != "" {
		// The rebound graph's own fingerprint would differ per shard too, but
		// deriving the key from the base avoids re-hashing the graph on every
		// shard of every query (Prepared computes baseFP once, ever).
		fp = x.baseFP + "|shard:" + x.shard
	}
	exr, err := e.executeCached(senv, scomp, fp, x.gen)
	// Release the fan-out slot before emitting: the join work the limiter
	// bounds is done, and an ordered gather needs every shard's head before
	// it can merge — a shard still holding its slot while blocked on a full
	// item channel could starve the shards the merge is waiting for.
	e.shardLim.Release()
	if err != nil {
		abort(err)
		return
	}
	stats := exr.stats
	stats.Scanned = exr.scanned

	if scomp.Tail.Agg != nil {
		agg, err := plan.FoldAgg(exr.rel, scomp.Tail.Agg)
		if err != nil {
			abort(fmt.Errorf("rox: %s: %w", scomp.Return.String(), err))
			return
		}
		stats.Rows = 1 // the shard's single partial-aggregate item
		stats.Elapsed = sw.Elapsed()
		st.done <- shardDone{stats: stats, rec: senv.Rec, agg: agg,
			gen: x.gen, ranPlan: exr.ranPlan, edgeRows: exr.edgeRows}
		return
	}

	ordered := scomp.Tail.Order != nil
	emitted := 0
	var cause error
	n := exr.rel.NumRows()
emit:
	for row := 0; row < n; row++ {
		it := shardItem{item: renderItem(scomp, exr.rel, row)}
		if ordered {
			it.key = exr.keys[row]
		}
		select {
		case st.items <- it:
			emitted++
		case <-ctx.Done():
			cause = ctx.Err()
			break emit
		}
	}
	stats.Rows = emitted
	stats.Elapsed = sw.Elapsed()
	if emitted < stats.Scanned || cause != nil {
		// Fewer items than the shard's join produced: the per-shard limit
		// window or the gather's early termination cut the stream short.
		stats.Truncated = true
	}
	st.done <- shardDone{stats: stats, rec: senv.Rec, err: cause,
		gen: x.gen, ranPlan: exr.ranPlan, edgeRows: exr.edgeRows}
}

// httpBackend runs shards on remote shard servers over the shardrpc NDJSON
// protocol. It keeps a hint store: the replay payload each endpoint's done
// reports carried last, re-attached to the next request for that shard so a
// warm cluster replays discovered plans with zero sampling — the coordinator
// never re-learns what a shard server already knows, and a shard server
// restarted cold re-learns from the coordinator's hint instead of sampling.
type httpBackend struct {
	e      *Engine
	client *shardrpc.Client
	// hints caches replay payloads keyed endpoint|baseFP|shard:name, each at
	// the remote document generation that produced it. The existing
	// stale/drift machinery runs on the serving side; this store only
	// remembers what to hint.
	hints *plancache.Cache
}

// Kind names the backend.
func (b *httpBackend) Kind() string { return "http" }

// hintKey derives the hint-store key for one remote shard execution.
func (x *shardExec) hintKey() string {
	return x.remote.Endpoint + "|" + x.baseFP + "|shard:" + x.shard
}

// run executes one shard remotely: acquire a fan-out slot around request
// establishment (the remote join work is bounded by the server's own limiter;
// holding a coordinator slot while streaming would starve an ordered merge
// exactly like a local shard holding its slot while blocked on a full
// channel), stream the response into the gather, and report the done line's
// stats with the coordinator-observed elapsed time. Cancellation — window
// filled, caller gone — closes the response body, which aborts the remote
// execution mid-stream.
func (b *httpBackend) run(ctx context.Context, x *shardExec, st *shardStream) {
	defer close(st.items)
	sw := metrics.Start()
	rec := metrics.NewRecorder()
	fail := func(err error) {
		st.done <- shardDone{
			err:   fmt.Errorf("rox: shard %q at %s: %w", x.shard, x.remote.Endpoint, err),
			rec:   rec,
			stats: Stats{Elapsed: sw.Elapsed(), Truncated: true},
		}
	}
	req := &shardrpc.ExecRequest{
		Collection:  x.coll,
		Query:       x.query,
		ShardLimit:  x.shardLimit,
		Fingerprint: x.baseFP,
	}
	if x.baseFP != "" {
		if entry, outcome := b.hints.Lookup(x.hintKey(), 0); outcome != plancache.Miss && entry != nil {
			p := entry.Plan
			req.Hint = &shardrpc.PlanHint{
				Generation: entry.Generation,
				Steps:      shardrpc.StepsFromPlan(&p),
				Expected:   entry.Expected,
			}
		}
	}
	if err := b.e.shardLim.Acquire(ctx); err != nil {
		fail(err)
		return
	}
	stream, err := b.client.Execute(ctx, x.remote.Endpoint, x.remote.Doc, req)
	b.e.shardLim.Release()
	if err != nil {
		fail(err)
		return
	}
	defer stream.Close()
	emitted := 0
	for {
		m, err := stream.Next()
		if err != nil {
			// A canceled context surfaces as a transport read error; report
			// the cancellation itself so the gather treats it like a local
			// shard's early termination.
			if cerr := ctx.Err(); cerr != nil {
				st.done <- shardDone{err: cerr, rec: rec,
					stats: Stats{Rows: emitted, Elapsed: sw.Elapsed(), Truncated: true}}
				return
			}
			fail(err)
			return
		}
		if m.Done != nil {
			b.finish(x, m.Done, st, rec, sw, emitted)
			return
		}
		it := shardItem{item: *m.Item}
		if m.Key != nil {
			it.key = m.Key.ToPlan()
		}
		select {
		case st.items <- it:
			emitted++
		case <-ctx.Done():
			// Window filled or caller canceled: stop reading; the deferred
			// body close aborts the remote execution.
			st.done <- shardDone{err: ctx.Err(), rec: rec,
				stats: Stats{Rows: emitted, Elapsed: sw.Elapsed(), Truncated: true}}
			return
		}
	}
}

// finish turns the stream's done report into the gather's shardDone and
// refreshes the hint store with the replay payload the server returned.
func (b *httpBackend) finish(x *shardExec, d *shardrpc.Done, st *shardStream,
	rec *metrics.Recorder, sw metrics.Stopwatch, emitted int) {
	done := shardDone{rec: rec, gen: d.Generation}
	if d.Stats != nil {
		done.stats = statsFromWire(*d.Stats)
	}
	// Elapsed is coordinator-observed: what this query actually spent on the
	// shard, network included (the shard-side compute time is close but not
	// what the gather waited for).
	done.stats.Elapsed = sw.Elapsed()
	done.stats.Rows = emitted
	if d.Agg != nil {
		done.agg = d.Agg.State()
		done.stats.Rows = 1
	}
	if d.Error != "" {
		done.err = fmt.Errorf("rox: shard %q at %s: %s", x.shard, x.remote.Endpoint, d.Error)
		done.stats.Truncated = true
	} else if x.baseFP != "" && len(d.Plan) > 0 {
		b.hints.Install(&plancache.Entry{
			Fingerprint: x.hintKey(),
			Generation:  d.Generation,
			Plan:        shardrpc.ToPlan(d.Plan),
			Expected:    d.Expected,
		})
	}
	st.done <- done
}

// backendFor picks the execution backend for one registered shard.
func (e *Engine) backendFor(sh *plan.Shard) ShardBackend {
	if sh.Remote != nil {
		return e.remote
	}
	return e.local
}

// ShardFailurePolicy selects how a collection query treats a failing shard;
// see WithShardRetry.
type ShardFailurePolicy int

const (
	// ShardFailFast fails the whole query on the first shard error — the
	// default, and the only correct choice when results must cover the full
	// collection.
	ShardFailFast ShardFailurePolicy = iota
	// ShardRetryThenPartial retries a failed shard once (only if none of its
	// items entered the merge yet — a mid-stream restart could duplicate
	// rows) and, if it fails again, completes the query without that shard:
	// Stats.Truncated is set and the shard's ShardStats carries the error.
	ShardRetryThenPartial
)

// WithShardRetry sets the engine's shard failure policy for collection
// queries (default ShardFailFast). ShardRetryThenPartial trades completeness
// for availability — the natural choice when shards are remote and a replica
// restart should degrade a search result, not fail it.
func WithShardRetry(p ShardFailurePolicy) Option {
	return func(e *Engine) { e.shardRetry = p }
}

// runShardGuarded wraps a backend run with the ShardRetryThenPartial policy:
// forward the inner stream, restart it once if it failed before contributing
// any item, and convert a final failure into a partial completion. The
// fail-fast default dispatches backends directly and never pays for this
// indirection.
func (e *Engine) runShardGuarded(ctx context.Context, be ShardBackend, x *shardExec, st *shardStream) {
	defer close(st.items)
	var last shardDone
	for attempt := 0; attempt < 2; attempt++ {
		inner := newShardStream(st.name)
		go be.run(ctx, x, inner)
		forwarded := false
		for it := range inner.items {
			select {
			case st.items <- it:
				forwarded = true
			case <-ctx.Done():
				// The gather is gone; unwind the inner producer and pass its
				// report through.
				for range inner.items {
				}
				st.done <- <-inner.done
				return
			}
		}
		last = <-inner.done
		if last.err == nil || ctx.Err() != nil ||
			errors.Is(last.err, context.Canceled) || errors.Is(last.err, context.DeadlineExceeded) {
			// Success, or a cancellation (the gather's own early termination,
			// never worth retrying).
			st.done <- last
			return
		}
		if forwarded {
			break // items already merged: a restart could duplicate them
		}
	}
	// Retry exhausted: complete without this shard. The gather records the
	// error in the shard's stats and truncates instead of failing the query.
	last.partial = true
	last.stats.Truncated = true
	st.done <- last
}

// Endpoint names one remote shard server for LoadCollectionRemote.
type Endpoint struct {
	// URL is the server's base URL, e.g. "http://10.0.0.7:8080".
	URL string
	// Shards optionally names the remote documents to register as shards, in
	// slice order. Empty discovers the server's full inventory (GET
	// /v1/shards) and registers it in the server's (name-sorted) order.
	Shards []string
}

// LoadCollectionRemote registers remote shards of the named collection: each
// endpoint's documents become shards served over HTTP by a roxserve in
// shard-server role, interleaving freely with local shards registered through
// the other LoadCollection* calls (the gather cannot tell them apart).
// Endpoints without an explicit shard list are asked for their inventory
// using ctx. Like every Load*, the registration is one copy-on-write catalog
// swap; shard names must be unique across the collection's endpoints, a
// duplicate name replaces the earlier registration.
func (e *Engine) LoadCollectionRemote(ctx context.Context, coll string, endpoints []Endpoint) error {
	var remotes []plan.Remote
	for _, ep := range endpoints {
		if strings.TrimSpace(ep.URL) == "" {
			return fmt.Errorf("rox: LoadCollectionRemote: empty endpoint URL")
		}
		names := ep.Shards
		if len(names) == 0 {
			infos, err := e.remote.client.Shards(ctx, ep.URL)
			if err != nil {
				return fmt.Errorf("rox: discovering shards at %s: %w", ep.URL, err)
			}
			for _, in := range infos {
				names = append(names, in.Name)
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("rox: shard server %s serves no documents", ep.URL)
		}
		for _, n := range names {
			remotes = append(remotes, plan.Remote{Endpoint: ep.URL, Doc: n})
		}
	}
	e.mu.Lock()
	cat := e.cat.Clone()
	for _, r := range remotes {
		cat.AddCollectionShardRemote(coll, r)
	}
	e.cat = cat
	e.mu.Unlock()
	return nil
}

// WithShardHTTPClient replaces the HTTP client the engine's remote shard
// backend uses (default: a fresh http.Client with transport defaults and no
// overall timeout — execute responses stream for as long as queries run).
func WithShardHTTPClient(hc *http.Client) Option {
	return func(e *Engine) { e.remoteHTTP = hc }
}

// statsFromWire decodes a shard server's stats report.
func statsFromWire(ws shardrpc.Stats) Stats {
	return Stats{
		Rows:                   ws.Rows,
		Scanned:                ws.Scanned,
		Truncated:              ws.Truncated,
		Elapsed:                time.Duration(ws.ElapsedNS),
		ExecTuples:             ws.ExecTuples,
		SampleTuples:           ws.SampleTuples,
		CumulativeIntermediate: ws.CumulativeIntermediate,
		Plan:                   ws.Plan,
		CacheHit:               ws.CacheHit,
		Reoptimized:            ws.Reoptimized,
	}
}

// statsToWire encodes one shard's stats for the wire.
func statsToWire(s Stats) shardrpc.Stats {
	return shardrpc.Stats{
		Rows:                   s.Rows,
		Scanned:                s.Scanned,
		Truncated:              s.Truncated,
		ElapsedNS:              int64(s.Elapsed),
		ExecTuples:             s.ExecTuples,
		SampleTuples:           s.SampleTuples,
		CumulativeIntermediate: s.CumulativeIntermediate,
		Plan:                   s.Plan,
		CacheHit:               s.CacheHit,
		Reoptimized:            s.Reoptimized,
	}
}

// ---- Server half: the engine as a shardrpc.Executor ----

// ExecuteShard implements shardrpc.Executor: serve one shard execution
// against this engine's catalog. The request's fingerprint and plan hint
// plug into this engine's own plan cache — a hint installs as a cache entry
// at the hint's generation, so the regular lookup classifies it (exact
// generation → replay without verification; older → replay-and-verify with
// drift re-optimization), exactly the machinery local shards use. Intended
// for cmd/roxserve's shard-server role; library callers use collection
// queries, not this.
func (e *Engine) ExecuteShard(ctx context.Context, shard string, req *shardrpc.ExecRequest) (shardrpc.ShardRun, error) {
	if req.Collection == "" {
		return nil, &shardrpc.StatusError{Status: http.StatusBadRequest,
			Err: errors.New("rox: execute request names no collection")}
	}
	comp, err := xquery.CompileString(req.Query, xquery.CompileOptions{})
	if err != nil {
		return nil, &shardrpc.StatusError{Status: http.StatusBadRequest, Err: err}
	}
	if !slices.Contains(comp.Collections, req.Collection) {
		return nil, &shardrpc.StatusError{Status: http.StatusBadRequest,
			Err: fmt.Errorf("rox: query does not read collection %q", req.Collection)}
	}
	if req.ShardLimit < 0 {
		return nil, &shardrpc.StatusError{Status: http.StatusBadRequest,
			Err: fmt.Errorf("rox: negative shard limit %d", req.ShardLimit)}
	}
	if req.ShardLimit > 0 && comp.Tail.Agg != nil {
		return nil, &shardrpc.StatusError{Status: http.StatusBadRequest,
			Err: errors.New("rox: shard limit cannot apply to an aggregate return")}
	}
	cat := e.catalog()
	if _, err := cat.Index(shard); err != nil {
		return nil, &shardrpc.StatusError{Status: http.StatusNotFound, Err: translateErr(err)}
	}
	// The coordinator's window always replaces any limit clause of the query
	// text: a programmatic window overrides the text on the coordinator, so
	// the text's own clause is not authoritative here.
	var window *plan.LimitSpec
	if req.ShardLimit > 0 {
		window = &plan.LimitSpec{Count: req.ShardLimit}
	}
	comp = comp.WithTailLimit(window)
	gen := cat.DocGeneration(shard)
	fp := ""
	if e.cache != nil {
		if fp = req.Fingerprint; fp == "" {
			// A coordinator without caching sent no key; key locally so this
			// server still replays across such requests.
			fp = cacheKey(comp)
		}
		if req.Hint != nil && len(req.Hint.Steps) > 0 {
			// Seed the cache with the coordinator's replay payload; Install
			// keeps an existing entry from a newer generation, so a hint can
			// only add knowledge, never roll it back.
			e.cache.Install(&plancache.Entry{
				Fingerprint: fp + "|shard:" + shard,
				Generation:  req.Hint.Generation,
				Plan:        shardrpc.ToPlan(req.Hint.Steps),
				Expected:    req.Hint.Expected,
			})
		}
	}
	sctx, cancel := context.WithCancel(ctx)
	x := &shardExec{
		coll:      req.Collection,
		shard:     shard,
		gen:       gen,
		cat:       cat,
		comp:      comp,
		baseFP:    fp,
		interrupt: sctx.Err,
	}
	st := newShardStream(shard)
	go e.local.run(sctx, x, st)
	return &shardRun{st: st, cancel: cancel, ordered: comp.Tail.Order != nil, gen: gen}, nil
}

// ShardInventory implements shardrpc.Executor: every document this engine
// holds, with its own generation stamp, sorted by name.
func (e *Engine) ShardInventory() []shardrpc.ShardInfo {
	cat := e.catalog()
	names := cat.Names()
	out := make([]shardrpc.ShardInfo, len(names))
	for i, name := range names {
		out[i] = shardrpc.ShardInfo{Name: name, Generation: cat.DocGeneration(name)}
	}
	return out
}

// shardRun adapts one local shard execution to the shardrpc.ShardRun pull
// cursor the HTTP handler streams from.
type shardRun struct {
	st      *shardStream
	cancel  context.CancelFunc
	cur     shardItem
	done    *shardDone
	ordered bool
	gen     uint64
}

// Next pulls the next item off the execution's stream.
func (r *shardRun) Next() bool {
	it, ok := <-r.st.items
	if !ok {
		return false
	}
	r.cur = it
	return true
}

// Item returns the current serialized item.
func (r *shardRun) Item() string { return r.cur.item }

// Key returns the current item's merge key when the query orders.
func (r *shardRun) Key() (plan.Key, bool) { return r.cur.key, r.ordered }

// report memoizes the execution's end-of-stream report.
func (r *shardRun) report() *shardDone {
	if r.done == nil {
		d := <-r.st.done
		r.done = &d
	}
	return r.done
}

// Done assembles the wire done report: stats, generation stamp, fold state,
// and the executed plan's replay payload for the coordinator's next hint.
func (r *shardRun) Done() shardrpc.Done {
	d := r.report()
	out := shardrpc.Done{Generation: r.gen}
	if d.err != nil {
		out.Error = d.err.Error()
	}
	ws := statsToWire(d.stats)
	out.Stats = &ws
	if d.agg != nil {
		out.Agg = shardrpc.AggFromState(d.agg)
	}
	if d.ranPlan != nil {
		p := *d.ranPlan
		out.Plan = shardrpc.StepsFromPlan(&p)
		out.Expected = d.edgeRows
	}
	return out
}

// Close aborts the execution and drains it so its goroutine exits.
func (r *shardRun) Close() {
	r.cancel()
	for range r.st.items {
	}
	r.report()
}
