// Package rox is a from-scratch Go reproduction of "ROX: Run-time
// Optimization of XQueries" (Abdel Kader, Boncz, Manegold, van Keulen,
// SIGMOD 2009): an XQuery engine whose optimizer executes, materializes
// partial results, and uses cut-off sampling over the live intermediates to
// decide — at run time — the order of XPath steps and equi-joins of a query.
//
// The Engine is the high-level entry point:
//
//	eng := rox.NewEngine()
//	eng.LoadXML("people.xml", "<people>…</people>")
//	res, err := eng.Query(`for $p in doc("people.xml")//person return $p`)
//	for _, item := range res.Items { fmt.Println(item) }
//
// Query uses the ROX run-time optimizer; QueryStatic runs the classical
// compile-time baseline of the paper's evaluation for comparison. The
// building blocks (shredded storage, indices, staircase joins, Join Graphs,
// the optimizer, dataset generators, experiment drivers) live under
// internal/ and are documented in DESIGN.md.
//
// One Engine serves any number of concurrent queries over its loaded
// documents: the corpus lives in an immutable shared catalog and every call
// gets its own per-query evaluation state. Execute is the context-first
// streaming entry point — it returns a Rows cursor that serializes items
// incrementally and pushes limit/offset windows down into the execution
// (Query and friends drain a cursor into a materialized Result). Plans the
// optimizer discovers are cached by canonical Join Graph fingerprint, so
// repeated queries replay with zero sampling work until the data drifts
// (Prepare compiles once for that hot path). Corpora larger than one
// shredded tree load as sharded collections (LoadCollection) and are queried
// with collection("name") — scatter-gather execution that runs the full ROX
// optimizer independently per shard and streams the merged result through
// the cursor, stopping early (and canceling leftover shard work) once a
// limit window fills. See Pool for a bounded-concurrency front end and
// cmd/roxserve for an HTTP server built on it.
package rox

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/classical"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/shardrpc"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// Engine evaluates XQueries over a set of loaded documents.
//
// Concurrency contract: concurrent Query, QueryStatic, QueryContext, Explain,
// XPath and XPathCount calls are safe — the loaded corpus (documents +
// indices) is an immutable plan.Catalog shared by all in-flight queries, and
// each call creates its own per-query state (cost recorder and seeded random
// stream). Load* calls swap in a copy-on-write catalog under a write lock, so
// they may run while queries are in flight: each query sees the catalog as of
// its start. For reproducibility, a fixed WithSeed seed yields the same plan
// and results on every call, sequential or concurrent.
type Engine struct {
	mu   sync.RWMutex  // guards cat (pointer swap on load)
	cat  *plan.Catalog // immutable once published; replaced, never mutated
	opts core.Options
	seed int64

	// cache holds the plans previous ROX runs discovered, keyed by the
	// canonical Join Graph fingerprint and validated against the catalog
	// generation; nil when disabled (WithPlanCache(0)). See Query for the
	// compile → lookup → execute pipeline.
	cache      *plancache.Cache
	driftRatio float64

	// shardLim bounds the engine-wide scatter-gather fan-out: every in-flight
	// collection query's shard evaluations contend on this one limiter, so
	// concurrent scatters (e.g. from a Pool's workers) cannot multiply into
	// workers × shards goroutines. It is the same primitive Pool uses for
	// query admission (internal/conc).
	shardLim     *conc.Limiter
	shardWorkers int

	// local and remote are the two ShardBackend implementations collection
	// queries dispatch shards to (see backend.go); shardRetry is the
	// failure policy WithShardRetry selects.
	local      *localBackend
	remote     *httpBackend
	remoteHTTP *http.Client
	shardRetry ShardFailurePolicy

	// ing is the engine's shared live-ingest handle, created lazily by
	// Engine.Ingest (see ingest.go).
	ingOnce sync.Once
	ing     *Ingester
}

// DefaultPlanCacheSize is the plan-cache LRU bound of NewEngine.
const DefaultPlanCacheSize = 256

// DefaultDriftRatio is the cardinality drift factor beyond which a cached
// plan is considered stale: a replayed edge whose observed intermediate
// cardinality exceeds (or undershoots) the discovering run's observation by
// more than this ratio triggers re-optimization.
const DefaultDriftRatio = plancache.DefaultDriftRatio

// Option configures an Engine.
type Option func(*Engine)

// WithSampleSize sets the optimizer's sample size τ (default 100).
func WithSampleSize(tau int) Option {
	return func(e *Engine) { e.opts.Tau = tau }
}

// WithSeed fixes the random source of the sampling optimizer, making runs
// reproducible (default 1).
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithOptimizerOptions replaces the full optimizer configuration (ablation
// switches included); see core.Options.
func WithOptimizerOptions(o core.Options) Option {
	return func(e *Engine) { e.opts = o }
}

// WithPlanCache bounds the engine's plan cache to the given number of
// entries; capacity <= 0 disables caching entirely (every Query runs the
// full ROX sampling loop, the pre-cache behavior). The default is
// DefaultPlanCacheSize.
func WithPlanCache(capacity int) Option {
	return func(e *Engine) {
		if capacity <= 0 {
			e.cache = nil
			return
		}
		e.cache = plancache.New(capacity)
	}
}

// WithDriftRatio sets the cardinality factor beyond which a replayed cached
// plan counts as drifted and is re-optimized (default DefaultDriftRatio;
// values <= 1 fall back to the default).
func WithDriftRatio(r float64) Option {
	return func(e *Engine) {
		if r > 1 {
			e.driftRatio = r
		}
	}
}

// WithShardWorkers bounds how many shard evaluations of collection queries
// may run at once across the whole engine (default GOMAXPROCS). The bound is
// engine-wide, not per query: concurrent collection queries share it, which
// keeps the scatter-gather fan-out additive with (not multiplicative in) a
// Pool's worker count.
func WithShardWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.shardWorkers = n
		}
	}
}

// NewEngine returns an empty engine with plan caching enabled.
func NewEngine(options ...Option) *Engine {
	e := &Engine{
		opts:       core.DefaultOptions(),
		seed:       1,
		cat:        plan.NewCatalog(),
		cache:      plancache.New(DefaultPlanCacheSize),
		driftRatio: DefaultDriftRatio,
	}
	for _, o := range options {
		o(e)
	}
	if e.shardWorkers <= 0 {
		e.shardWorkers = runtime.GOMAXPROCS(0)
	}
	e.shardLim = conc.NewLimiter(e.shardWorkers)
	e.local = &localBackend{e: e}
	e.remote = &httpBackend{
		e:      e,
		client: shardrpc.NewClient(e.remoteHTTP),
		hints:  plancache.New(DefaultPlanCacheSize),
	}
	return e
}

// catalog returns the current catalog snapshot. Queries run against the
// snapshot; a concurrent load publishes a new catalog without disturbing
// them.
func (e *Engine) catalog() *plan.Catalog {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cat
}

// newQueryEnv builds the per-query evaluation state over the current
// catalog snapshot.
func (e *Engine) newQueryEnv() *plan.Env {
	return plan.NewQueryEnv(e.catalog(), metrics.NewRecorder(), e.seed)
}

// LoadXML shreds and indexes an XML document given as a string. The name is
// what doc("name") in queries refers to. Thin wrapper over
// LoadSource(name, FromXML(...)).
func (e *Engine) LoadXML(name, xml string) error {
	return e.LoadSource(name, FromXML(name, xml))
}

// Load shreds and indexes an XML document from a reader. Thin wrapper over
// LoadSource(name, FromReader(...)).
func (e *Engine) Load(name string, r io.Reader) error {
	return e.LoadSource(name, FromReader(name, r))
}

// LoadFile shreds and indexes an XML file; queries address it by the given
// name (or the path's base name if name is empty). Thin wrapper over
// LoadSource(name, FromFile(...)).
func (e *Engine) LoadFile(name, path string) error {
	return e.LoadSource(name, FromFile(name, path))
}

// LoadDocument registers a pre-shredded document (e.g. from the dataset
// generators in internal/datagen). Thin wrapper over
// LoadSource("", FromDocument(d)).
func (e *Engine) LoadDocument(d *xmltree.Document) {
	// FromDocument with no name override cannot fail: the document is
	// already shredded and keeps its own name.
	_ = e.LoadSource("", FromDocument(d))
}

// publishIndexed registers a pre-built index through the same copy-on-write
// swap as publish — the path for packed files, whose indices come off disk
// instead of an O(n) build.
func (e *Engine) publishIndexed(ix *index.Index) {
	e.mu.Lock()
	cat := e.cat.Clone()
	cat.AddIndexed(ix)
	e.cat = cat
	e.mu.Unlock()
}

// LoadPacked registers a document from a .roxd file produced by cmd/roxpack
// (or datagen -pack). A packed v2 container is memory-mapped and queried
// zero-copy, with its persistent index sections attached directly — cold
// start does none of the O(corpus) shredding and index building of LoadFile.
// The document is addressed by the name stored in the container. A v1 .roxd
// file loads too, via the heap decode + index rebuild. On platforms without
// mmap the container is read into the heap (same layout, same indices).
// Thin wrapper over LoadSource("", FromPacked(path)).
func (e *Engine) LoadPacked(path string) error {
	return e.LoadSource("", FromPacked(path))
}

// LoadCollectionShardPacked registers (or replaces, matching on the stored
// document name) one shard of the named collection from a .roxd file. This
// is the O(1) shard swap: replacing a shard maps the new file — no
// re-shred, no index rebuild, no stop-the-world — and bumps only that
// shard's generation stamp, so cached plans of sibling shards stay exactly
// valid while the plan cache's stale-generation machinery absorbs the
// change for the swapped shard. The old mapping stays valid for in-flight
// queries over the previous catalog snapshot and is unmapped once
// unreachable. Thin wrapper over LoadCollectionSource(coll, FromPacked(path)).
func (e *Engine) LoadCollectionShardPacked(coll, path string) error {
	return e.LoadCollectionSource(coll, FromPacked(path))
}

// LoadCollectionPacked registers every .roxd file as a shard of the named
// collection, in slice order (which becomes the collection's result order).
// Like LoadCollection, all shards are published in one copy-on-write swap:
// concurrent queries see either the catalog before the call or the complete
// collection, never a prefix. Thin wrapper over LoadCollectionSource with
// FromPacked sources.
func (e *Engine) LoadCollectionPacked(coll string, paths []string) error {
	srcs := make([]Source, len(paths))
	for i, path := range paths {
		srcs[i] = FromPacked(path)
	}
	return e.LoadCollectionSource(coll, srcs...)
}

// LoadCollectionShard registers (or replaces, matching on document name) one
// shard of the named collection, creating the collection on first use.
// collection(coll) in queries scatters over the shards in registration order;
// each shard also stays addressable as doc(shardName). Like every Load*, this
// is a copy-on-write catalog swap, safe while queries are in flight: a
// replaced shard bumps only its own generation stamp, so cached plans of the
// sibling shards remain exactly valid. Thin wrapper over
// LoadCollectionSource(coll, FromDocument(d)).
func (e *Engine) LoadCollectionShard(coll string, d *xmltree.Document) {
	// FromDocument cannot fail on an already-shredded document.
	_ = e.LoadCollectionSource(coll, FromDocument(d))
}

// LoadCollection registers every document as a shard of the named collection,
// in slice order (which becomes the collection's result order). All shards
// are published in one copy-on-write swap: concurrent queries see either the
// catalog before the call or the complete collection, never a prefix. Thin
// wrapper over LoadCollectionSource with FromDocument sources.
func (e *Engine) LoadCollection(coll string, docs []*xmltree.Document) {
	srcs := make([]Source, len(docs))
	for i, d := range docs {
		srcs[i] = FromDocument(d)
	}
	_ = e.LoadCollectionSource(coll, srcs...)
}

// LoadCollectionShardXML shreds, indexes and registers one XML shard given as
// a string; name is the shard's document name. Thin wrapper over
// LoadCollectionSource(coll, FromXML(name, xml)).
func (e *Engine) LoadCollectionShardXML(coll, name, xml string) error {
	return e.LoadCollectionSource(coll, FromXML(name, xml))
}

// Documents returns the names of the currently loaded documents, sorted
// (collection shards included — every shard is also a document).
func (e *Engine) Documents() []string {
	return e.catalog().Names()
}

// Collections returns the names of the registered collections, sorted.
func (e *Engine) Collections() []string {
	return e.catalog().Collections()
}

// CollectionShards returns the shard document names of the named collection
// in registration (result) order.
func (e *Engine) CollectionShards(coll string) ([]string, error) {
	col, err := e.catalog().Collection(coll)
	if err != nil {
		return nil, translateErr(err)
	}
	return col.ShardNames(), nil
}

// Stats reports how a query evaluation spent its work.
type Stats struct {
	// Rows is the number of result items actually returned — for a drained
	// legacy Query it equals len(Result.Items); for a streaming cursor it is
	// the number of items Next handed out. Aggregate queries (count, sum,
	// avg, min, max) return 1, the single aggregate item; a limit/offset
	// window counts post-truncation.
	Rows int
	// Scanned is the result cardinality before any limit/offset window: the
	// distinct sorted join output the evaluation produced (for aggregates,
	// the tuples the fold consumed). Scanned == Rows whenever no window,
	// early Close or cancellation truncated the stream. For collection
	// queries it sums over the shards that completed their join.
	Scanned int
	// Truncated reports that not every scanned row was returned: a
	// limit/offset window, an early-terminating scatter-gather merge, a
	// mid-stream cancellation or an early cursor Close cut the stream short.
	Truncated bool
	// Elapsed is the wall-clock evaluation time, sampling included.
	Elapsed time.Duration
	// ExecTuples and SampleTuples split the deterministic tuple work
	// between query execution and optimizer sampling. A plan-cache hit
	// replays with SampleTuples == 0.
	ExecTuples, SampleTuples int64
	// CumulativeIntermediate sums all intermediate result cardinalities.
	CumulativeIntermediate int64
	// Plan renders the executed edge order.
	Plan string
	// CacheHit reports that this evaluation replayed a cached plan instead
	// of running the sampling optimizer.
	CacheHit bool
	// Reoptimized reports that a cached plan was replayed but its observed
	// cardinalities drifted beyond the engine's drift ratio, so the query
	// was re-optimized from scratch (the returned results come from that
	// fresh ROX run). For collection queries it is set when any shard
	// re-optimized.
	Reoptimized bool
	// Shards breaks a collection query down per shard, in shard (result)
	// order; nil for single-document queries. The top-level tuple and
	// intermediate counters are the sums over the shards; CacheHit is set
	// only when every shard replayed a cached plan.
	Shards []ShardStats
}

// ShardStats is one shard's share of a scatter-gather evaluation: which shard,
// and the full per-shard Stats of the independent ROX run over it (each shard
// discovers its own plan from its own samples, so Plan, CacheHit and
// Reoptimized genuinely differ between shards).
type ShardStats struct {
	Shard string
	Stats Stats
	// Err records a shard the ShardRetryThenPartial policy completed
	// without: the failure that exhausted the shard's retry, rendered as a
	// string. Empty on every other path — under the default fail-fast
	// policy a shard failure fails the query instead.
	Err string
}

// Result is a materialized query result: the serialized XML of every
// returned item, in query order, plus evaluation statistics. Aggregate
// queries (count, sum, avg, min, max) always carry exactly one item —
// avg/min/max over an empty sequence render as an empty item, XQuery's empty
// sequence. The legacy Query methods return a Result by draining a Rows
// cursor; callers that want items incrementally use Execute.
type Result struct {
	Items []string
	Stats Stats
}

// Execute evaluates a Request and returns a streaming Rows cursor: the join
// work (compile → plan-cache lookup → ROX optimize or replay) happens before
// Execute returns, but items are serialized — and, for collection queries,
// scatter-gathered across shards — incrementally as the cursor advances.
// Closing the cursor early cancels outstanding shard work; ctx cancels both
// the evaluation and the stream. Safe to call from any number of goroutines
// (each call gets its own cursor). The legacy Query/QueryContext/QueryStatic
// methods are thin wrappers that drain an Execute cursor.
func (e *Engine) Execute(ctx context.Context, req Request) (*Rows, error) {
	comp, err := xquery.CompileString(req.Query, xquery.CompileOptions{})
	if err != nil {
		return nil, err
	}
	window, err := requestWindow(req.Limit, req.Offset)
	if err != nil {
		return nil, err
	}
	if window != nil {
		if comp, err = overrideWindow(comp, window); err != nil {
			return nil, err
		}
	}
	return e.executeCompiled(ctx, comp, req.Query, "", req.Static)
}

// Query evaluates an XQuery through the compile → plan-cache lookup →
// execute pipeline: a cached plan from an earlier run of the same query
// shape replays with zero sampling work; otherwise the ROX run-time
// optimizer runs and its discovered plan is installed. Safe to call from any
// number of goroutines. For repeated queries prefer Prepare, which also
// skips recompilation; for incremental consumption (or limit/offset
// push-down without a clause in the query text) prefer Execute, which Query
// wraps by draining its cursor.
//
//roxvet:ctxroot legacy no-ctx convenience; cancellation-aware callers use QueryContext/Execute.
func (e *Engine) Query(q string) (*Result, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: when ctx is canceled or exceeds
// its deadline, the evaluation aborts between operator executions and the
// context's error is returned. Prefer Execute for new code.
func (e *Engine) QueryContext(ctx context.Context, q string) (*Result, error) {
	rows, err := e.Execute(ctx, Request{Query: q})
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// QueryStatic evaluates an XQuery with the classical compile-time baseline:
// a static plan ordered by per-document statistics, blind to correlations.
// Safe to call from any number of goroutines. Prefer Execute (with
// Request.Static) for new code.
//
//roxvet:ctxroot legacy no-ctx convenience; cancellation-aware callers use QueryStaticContext.
func (e *Engine) QueryStatic(q string) (*Result, error) {
	return e.QueryStaticContext(context.Background(), q)
}

// QueryStaticContext is QueryStatic with cancellation, like QueryContext.
// Prefer Execute (with Request.Static) for new code.
func (e *Engine) QueryStaticContext(ctx context.Context, q string) (*Result, error) {
	rows, err := e.Execute(ctx, Request{Query: q, Static: true})
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// overrideWindow applies a programmatic limit/offset window to a compiled
// query, replacing any limit clause of the query text.
func overrideWindow(comp *xquery.Compiled, window *plan.LimitSpec) (*xquery.Compiled, error) {
	if comp.Tail.Agg != nil {
		return nil, fmt.Errorf("rox: limit/offset cannot apply to an aggregate return (%s yields one item)", comp.Return.String())
	}
	return comp.WithTailLimit(window), nil
}

// executeCompiled is the execution pipeline behind Execute and
// Prepared.Execute: build the per-query environment, then route — static
// baseline, scatter-gather for collection queries, or cached single-catalog
// execution at the current catalog generation — and wrap the outcome in a
// cursor. text is the original query text (remote shard backends ship it
// instead of a serialized graph); fp is the precomputed cache key ("" =
// compute here); see cacheKey.
func (e *Engine) executeCompiled(ctx context.Context, comp *xquery.Compiled, text, fp string, static bool) (*Rows, error) {
	env := e.newQueryEnv()
	env.Interrupt = ctx.Err
	if static {
		return e.executeStatic(ctx, env, comp)
	}
	if e.cache != nil && fp == "" {
		fp = cacheKey(comp)
	}
	if len(comp.Collections) > 0 {
		return e.executeCollection(ctx, env, comp, text, fp)
	}
	exr, err := e.executeCached(env, comp, fp, env.Catalog().Generation())
	if err != nil {
		return nil, err
	}
	src, err := exr.source(ctx)
	if err != nil {
		return nil, err
	}
	return newRows(env, exr.sw, exr.stats, src), nil
}

// execResult is the outcome of one pipeline execution before serialization:
// the windowed final relation (nil only for failed runs), the order-by merge
// keys when the tail sorts, the pre-window cardinality, and the statistics of
// the join phase. The caller turns it into a row source — lazily serializing
// items for the cursor — or, on the scatter path, streams it into a shard
// channel.
type execResult struct {
	comp    *xquery.Compiled
	rel     *table.Relation
	keys    []plan.Key
	scanned int
	stats   Stats // Rows, Scanned, Truncated, Elapsed are the cursor's to fill
	sw      metrics.Stopwatch
	// ranPlan and edgeRows are the executed plan and its observed per-edge
	// cardinalities — the replay payload a shard server returns so the
	// coordinator can hint the next execution (nil on the static path).
	ranPlan  *plan.Plan
	edgeRows map[int]int
}

// source builds the cursor row source for a single-catalog execution:
// aggregate tails fold eagerly (the fold consumes the whole relation and can
// fail the query), everything else streams row serialization.
func (x *execResult) source(ctx context.Context) (rowSource, error) {
	if x.comp.Tail.Agg != nil {
		st, err := plan.FoldAgg(x.rel, x.comp.Tail.Agg)
		if err != nil {
			return nil, fmt.Errorf("rox: %s: %w", x.comp.Return.String(), err)
		}
		// Aggregates always yield exactly one item; avg/min/max over an
		// empty sequence render XQuery's empty sequence as an empty item.
		item, _ := st.Render(x.comp.Tail.Agg.Kind)
		return &itemsRows{ctx: ctx, items: []string{item}, scanned: x.scanned}, nil
	}
	return &relRows{ctx: ctx, comp: x.comp, rel: x.rel, scanned: x.scanned}, nil
}

// executeCached runs one compiled graph through fingerprint → plan-cache
// lookup → replay or optimize, over whatever documents the graph's vertices
// name. gen is the generation the cache entry is validated against — the
// catalog generation for single-document queries, the shard's own stamp for
// one shard of a scattered collection query (which is what confines
// invalidation to the shard that actually changed).
//
//   - Cache hit at generation gen: replay the cached plan with zero sampling
//     work.
//   - Hit from an older generation (the data changed since discovery):
//     replay anyway — replay is correct regardless of data changes, only the
//     cost can suffer — while comparing observed per-edge cardinalities
//     against the discovering run's. Within the drift ratio the entry is
//     revalidated for gen; beyond it the entry is dropped and the query
//     re-optimized on the spot by a full ROX run.
//   - Miss: run ROX and install the discovered plan.
func (e *Engine) executeCached(env *plan.Env, comp *xquery.Compiled, fp string, gen uint64) (*execResult, error) {
	// The stopwatch and recorder baselines start before the cache lookup so
	// that on the drift path — replay first, then a full re-optimization —
	// the returned Stats cover everything this request actually did, not
	// just the final run.
	sw := metrics.Start()
	startExec := env.Rec.CostOf(metrics.PhaseExecute)
	startSample := env.Rec.CostOf(metrics.PhaseSample)
	reoptimized := false
	var replayIntermediate int64 // drift path: the abandoned replay's intermediates
	if e.cache != nil {
		if entry, outcome := e.cache.Lookup(fp, gen); outcome != plancache.Miss {
			rel, stats, err := e.replay(env, comp, entry)
			switch {
			case err != nil && env.CheckInterrupt() != nil:
				// Canceled mid-replay: propagate, don't fall back.
				return nil, err
			case err != nil:
				// The cached plan does not fit the freshly compiled graph
				// (e.g. a fingerprint collision): drop it and optimize.
				e.cache.Invalidate(fp)
			case outcome == plancache.Hit:
				// Exact generation: the catalog is immutable per generation,
				// so the data cannot have drifted — serve without verifying.
				return e.replayResult(env, comp, entry, rel, stats, sw, startExec, startSample), nil
			default: // StaleGeneration: verify the successful replay
				if _, _, _, drifted := plancache.Drift(entry.Expected, stats.EdgeRows, e.driftRatio); drifted {
					// The data moved out from under the plan: evict and
					// re-optimize on the spot. The replayed results were
					// correct, but a fresh ROX run both answers this query
					// and discovers the plan that fits the data now.
					e.cache.MarkDrift(fp, gen)
					reoptimized = true
					replayIntermediate = stats.CumulativeIntermediate
				} else {
					e.cache.Revalidate(fp, gen, stats.EdgeRows)
					return e.replayResult(env, comp, entry, rel, stats, sw, startExec, startSample), nil
				}
			}
		}
	}
	rel, res, err := core.Run(env, comp.Graph, comp.Tail, e.opts)
	if err != nil {
		return nil, translateErr(err)
	}
	// Install before any serialization: the discovered plan is valid even
	// when the tail's data later fails it (e.g. a non-numeric aggregate
	// value), so a repeatedly-failing query replays cheaply instead of
	// re-running the full sampling loop on every retry. It also means a
	// cursor canceled mid-stream leaves the plan installed — the join work
	// that discovered it is already done.
	if e.cache != nil {
		e.cache.Install(&plancache.Entry{
			Fingerprint: fp,
			Generation:  gen,
			Plan:        res.Plan,
			Expected:    res.EdgeRows,
		})
	}
	return &execResult{
		comp:     comp,
		rel:      rel,
		keys:     res.Keys,
		scanned:  res.Scanned,
		sw:       sw,
		ranPlan:  &res.Plan,
		edgeRows: res.EdgeRows,
		stats: Stats{
			// Recorder deltas, not res.ExecCost/SampleCost, and the replay's
			// intermediates folded in: on the drift path the request also paid
			// for the abandoned replay, so every cost field covers it.
			ExecTuples:             env.Rec.CostOf(metrics.PhaseExecute).Sub(startExec).Tuples,
			SampleTuples:           env.Rec.CostOf(metrics.PhaseSample).Sub(startSample).Tuples,
			CumulativeIntermediate: res.CumulativeIntermediate + replayIntermediate,
			Plan:                   res.Plan.String(),
			Reoptimized:            reoptimized,
		},
	}, nil
}

// cacheKey derives the plan-cache key of a compiled query: the canonical
// Join Graph fingerprint extended with the tail's vertex lists and its
// order-by/aggregate/limit specs. The plan is a property of the graph alone
// — joingraph.Fingerprint is invariant under every tail spec, so plans
// transfer between tail variants — but replay verification compares
// projection-sensitive intermediate cardinalities (EagerProject reduces by
// the tail's required columns), so two queries sharing a graph while
// differing in order/aggregate/projection must key separately or their
// expectations would thrash each other's entries. The limit window cannot
// shift join-phase cardinalities (it applies strictly after them), but it is
// keyed all the same — conservatively, so each window's entry carries its
// own replay observations and a window change is a clean miss rather than a
// shared entry accumulating mixed history. The cost is one extra cold run
// per distinct window of a paginated query; after that every page replays.
func cacheKey(comp *xquery.Compiled) string {
	return fmt.Sprintf("%s|t:%v:%v:%v|o:%s|a:%s|l:%s", comp.Graph.Fingerprint(),
		comp.Tail.Project, comp.Tail.Sort, comp.Tail.Final,
		comp.Tail.Order, comp.Tail.Agg, comp.Tail.Limit)
}

// replay executes a cached plan over the freshly compiled graph, recording
// per-edge observed cardinalities. No sampling happens on this path — the
// whole point of the cache is SampleTuples == 0. Serialization stays with
// the cursor, so a replay that ends up drift-rejected never pays it.
func (e *Engine) replay(env *plan.Env, comp *xquery.Compiled, entry *plancache.Entry) (*table.Relation, *plan.RunStats, error) {
	p := entry.Plan
	return plan.RunWithConfig(env, comp.Graph, &p, comp.Tail,
		plan.RunConfig{EagerProject: e.opts.EagerProject})
}

// replayResult packages an accepted replay, assembling its Stats from the
// recorder deltas since the request began (replay work only — the cache
// lookup itself charges nothing).
func (e *Engine) replayResult(env *plan.Env, comp *xquery.Compiled, entry *plancache.Entry,
	rel *table.Relation, stats *plan.RunStats,
	sw metrics.Stopwatch, startExec, startSample metrics.Cost) *execResult {
	p := entry.Plan
	return &execResult{
		comp:    comp,
		rel:     rel,
		keys:    stats.Keys,
		scanned: stats.Scanned,
		sw:      sw,
		ranPlan: &p,
		// The replay's own observations, not the entry's: observed on the
		// current data, they are the better drift baseline for the next hint.
		edgeRows: stats.EdgeRows,
		stats: Stats{
			ExecTuples:             env.Rec.CostOf(metrics.PhaseExecute).Sub(startExec).Tuples,
			SampleTuples:           env.Rec.CostOf(metrics.PhaseSample).Sub(startSample).Tuples,
			CumulativeIntermediate: stats.CumulativeIntermediate,
			Plan:                   p.String(),
			CacheHit:               true,
		},
	}
}

// executeStatic runs the classical baseline path in the given per-query
// environment and wraps it in a cursor.
func (e *Engine) executeStatic(ctx context.Context, env *plan.Env, comp *xquery.Compiled) (*Rows, error) {
	if len(comp.Collections) > 0 {
		return nil, fmt.Errorf("%w: query reads collection %q", ErrStaticCollection, comp.Collections[0])
	}
	// Plan-time statistics are the optimizer's work, not query execution;
	// charge them to a scratch recorder as the baseline prescribes.
	pl, err := classical.StaticPlan(env.WithScratchRecorder(), comp.Graph)
	if err != nil {
		return nil, translateErr(err)
	}
	sw := metrics.Start()
	rel, stats, err := plan.Run(env, comp.Graph, pl, comp.Tail)
	if err != nil {
		return nil, translateErr(err)
	}
	exr := &execResult{
		comp:    comp,
		rel:     rel,
		keys:    stats.Keys,
		scanned: stats.Scanned,
		sw:      sw,
		stats: Stats{
			ExecTuples:             env.Rec.CostOf(metrics.PhaseExecute).Tuples,
			CumulativeIntermediate: stats.CumulativeIntermediate,
			Plan:                   pl.String(),
		},
	}
	src, err := exr.source(ctx)
	if err != nil {
		return nil, err
	}
	return newRows(env, sw, exr.stats, src), nil
}

// Explain compiles a query and returns the Join Graph rendering — what the
// run-time optimizer receives.
func (e *Engine) Explain(q string) (string, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return "", err
	}
	return comp.Graph.String(), nil
}

// XPath evaluates an absolute XPath expression over one loaded document
// using the staircase-join evaluator, returning the serialized result nodes
// in document order. This is the direct path-evaluation interface; full
// FLWOR queries go through Query.
func (e *Engine) XPath(docName, path string) ([]string, error) {
	ix, err := e.catalog().Index(docName)
	if err != nil {
		return nil, &NoSuchDocumentError{Name: docName}
	}
	nodes, err := xpath.Eval(ix, path)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = xmltree.SerializeString(ix.Doc(), n)
	}
	return out, nil
}

// XPathCount evaluates an XPath expression and returns only the result
// cardinality (free with index-supported evaluation).
func (e *Engine) XPathCount(docName, path string) (int, error) {
	ix, err := e.catalog().Index(docName)
	if err != nil {
		return 0, &NoSuchDocumentError{Name: docName}
	}
	return xpath.Count(ix, path)
}

// Prepared is a compiled query bound to an Engine: Prepare pays the lexing,
// parsing and Join Graph Isolation cost once, and every Prepared.Query call
// goes straight to the plan-cache lookup. The compiled graph is immutable
// after compilation, so a Prepared is safe for concurrent use by any number
// of goroutines — the intended shape for a server hot path is one Prepared
// per distinct query text, queried by every request.
type Prepared struct {
	eng  *Engine
	comp *xquery.Compiled
	text string
	fp   string
}

// Prepare compiles an XQuery once for repeated execution. The returned
// statement evaluates over whatever corpus the engine holds at each Query
// call (documents loaded after Prepare are visible).
func (e *Engine) Prepare(q string) (*Prepared, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return nil, err
	}
	return &Prepared{eng: e, comp: comp, text: q, fp: cacheKey(comp)}, nil
}

// Execute evaluates the prepared statement and returns a streaming Rows
// cursor: plan-cache lookup first, the full ROX optimizer only on a miss or
// after drift. Options set a limit/offset window without recompiling —
// WithLimit/WithOffset override any limit clause of the prepared text, so
// one statement serves every page of a paginated result. Safe to call from
// any number of goroutines.
func (p *Prepared) Execute(ctx context.Context, opts ...ExecOption) (*Rows, error) {
	var eo execOpts
	for _, o := range opts {
		o(&eo)
	}
	comp, fp := p.comp, p.fp
	if eo.windowed {
		window, err := requestWindow(eo.limit, eo.offset)
		if err != nil {
			return nil, err
		}
		if comp, err = overrideWindow(comp, window); err != nil {
			return nil, err
		}
		fp = "" // the window is part of the cache key; recompute for it
	}
	return p.eng.executeCompiled(ctx, comp, p.text, fp, false)
}

// Query evaluates the prepared statement: plan-cache lookup first, the full
// ROX optimizer only on a miss or after drift. Safe to call from any number
// of goroutines. Prefer Execute for new code — Query drains its cursor.
//
//roxvet:ctxroot legacy no-ctx convenience; cancellation-aware callers use QueryContext/Execute.
func (p *Prepared) Query() (*Result, error) {
	return p.QueryContext(context.Background())
}

// QueryContext is Query with cancellation, like Engine.QueryContext. Prefer
// Execute for new code.
func (p *Prepared) QueryContext(ctx context.Context) (*Result, error) {
	rows, err := p.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// Text returns the query text the statement was prepared from.
func (p *Prepared) Text() string { return p.text }

// Fingerprint returns the statement's plan-cache key: the canonical Join
// Graph fingerprint extended with the tail (paired with the catalog
// generation at each execution).
func (p *Prepared) Fingerprint() string { return p.fp }

// Explain returns the compiled Join Graph rendering.
func (p *Prepared) Explain() string { return p.comp.Graph.String() }

// CacheStats is a point-in-time view of the engine's plan cache.
type CacheStats struct {
	// Enabled is false when the engine runs with WithPlanCache(0); all other
	// fields are then zero.
	Enabled bool
	// Size and Capacity are the current and maximum entry counts of the LRU.
	Size, Capacity int
	// Counters breaks down lookups and invalidations; see
	// metrics.CacheSnapshot.
	Counters metrics.CacheSnapshot
}

// CacheStats reports the plan cache's size and event counters. Safe to call
// concurrently with queries.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		Enabled:  true,
		Size:     e.cache.Len(),
		Capacity: e.cache.Capacity(),
		Counters: e.cache.Counters().Snapshot(),
	}
}

// Version is the library version. The roxserve HTTP surface is versioned
// separately: every endpoint lives under /v1/ (see cmd/roxserve and the
// "Shard-server wire contract" section of DESIGN.md).
const Version = "1.1.0"

// ErrNoSuchDocument is the sentinel for queries addressing a document that
// was never loaded; match it with errors.Is. The concrete error carries the
// document name — retrieve it with errors.As:
//
//	var nse *NoSuchDocumentError
//	if errors.As(err, &nse) { log.Println(nse.Name) }
var ErrNoSuchDocument = errors.New("rox: no such document")

// NoSuchDocumentError reports which document a failing query referred to.
// It matches ErrNoSuchDocument under errors.Is.
type NoSuchDocumentError struct {
	Name string
}

// Error renders the failure with the document name.
func (e *NoSuchDocumentError) Error() string {
	return fmt.Sprintf("rox: document %q not loaded", e.Name)
}

// Is makes errors.Is(err, ErrNoSuchDocument) match.
func (e *NoSuchDocumentError) Is(target error) bool { return target == ErrNoSuchDocument }

// ErrNoSuchCollection is the sentinel for collection() queries addressing a
// collection that was never registered; match it with errors.Is, retrieve the
// name with errors.As on NoSuchCollectionError.
var ErrNoSuchCollection = errors.New("rox: no such collection")

// ErrStaticCollection is returned by QueryStatic for collection() queries:
// the classical compile-time baseline evaluates single documents only —
// per-shard adaptivity is exactly what the static plan cannot express.
var ErrStaticCollection = errors.New("rox: static baseline does not support collection()")

// ErrNonNumericAggregate is the sentinel for sum/avg/min/max queries whose
// aggregate path reached a value that does not atomize to a finite number —
// a query-vs-data mistake, not an engine fault. Match it with errors.Is; the
// wrapped message carries the offending value and its node position.
var ErrNonNumericAggregate = plan.ErrNonNumeric

// NoSuchCollectionError reports which collection a failing query referred to.
// It matches ErrNoSuchCollection under errors.Is.
type NoSuchCollectionError struct {
	Name string
}

// Error renders the failure with the collection name.
func (e *NoSuchCollectionError) Error() string {
	return fmt.Sprintf("rox: collection %q not loaded", e.Name)
}

// Is makes errors.Is(err, ErrNoSuchCollection) match.
func (e *NoSuchCollectionError) Is(target error) bool { return target == ErrNoSuchCollection }

// translateErr maps internal execution errors onto the package's typed
// errors — the catalog's unknown-document failure onto NoSuchDocumentError
// (so doc("missing.xml") in a query matches ErrNoSuchDocument just like the
// XPath entry points) and unknown collections onto NoSuchCollectionError.
func translateErr(err error) error {
	var ude *plan.UnknownDocumentError
	if errors.As(err, &ude) {
		return &NoSuchDocumentError{Name: ude.Name}
	}
	var uce *plan.UnknownCollectionError
	if errors.As(err, &uce) {
		return &NoSuchCollectionError{Name: uce.Name}
	}
	return err
}
