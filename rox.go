// Package rox is a from-scratch Go reproduction of "ROX: Run-time
// Optimization of XQueries" (Abdel Kader, Boncz, Manegold, van Keulen,
// SIGMOD 2009): an XQuery engine whose optimizer executes, materializes
// partial results, and uses cut-off sampling over the live intermediates to
// decide — at run time — the order of XPath steps and equi-joins of a query.
//
// The Engine is the high-level entry point:
//
//	eng := rox.NewEngine()
//	eng.LoadXML("people.xml", "<people>…</people>")
//	res, err := eng.Query(`for $p in doc("people.xml")//person return $p`)
//	for _, item := range res.Items { fmt.Println(item) }
//
// Query uses the ROX run-time optimizer; QueryStatic runs the classical
// compile-time baseline of the paper's evaluation for comparison. The
// building blocks (shredded storage, indices, staircase joins, Join Graphs,
// the optimizer, dataset generators, experiment drivers) live under
// internal/ and are documented in DESIGN.md.
package rox

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/classical"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// Engine evaluates XQueries over a set of loaded documents. It is not safe
// for concurrent use; create one engine per goroutine (documents and indices
// are immutable and cheap to share via LoadDocument on multiple engines).
type Engine struct {
	env  *plan.Env
	opts core.Options
	seed int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithSampleSize sets the optimizer's sample size τ (default 100).
func WithSampleSize(tau int) Option {
	return func(e *Engine) { e.opts.Tau = tau }
}

// WithSeed fixes the random source of the sampling optimizer, making runs
// reproducible (default 1).
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithOptimizerOptions replaces the full optimizer configuration (ablation
// switches included); see core.Options.
func WithOptimizerOptions(o core.Options) Option {
	return func(e *Engine) { e.opts = o }
}

// NewEngine returns an empty engine.
func NewEngine(options ...Option) *Engine {
	e := &Engine{opts: core.DefaultOptions(), seed: 1}
	for _, o := range options {
		o(e)
	}
	e.env = plan.NewEnv(metrics.NewRecorder(), e.seed)
	return e
}

// LoadXML shreds and indexes an XML document given as a string. The name is
// what doc("name") in queries refers to.
func (e *Engine) LoadXML(name, xml string) error {
	d, err := xmltree.ParseString(name, xml)
	if err != nil {
		return err
	}
	e.env.AddDocument(d)
	return nil
}

// Load shreds and indexes an XML document from a reader.
func (e *Engine) Load(name string, r io.Reader) error {
	d, err := xmltree.Parse(name, r, xmltree.ParseOptions{})
	if err != nil {
		return err
	}
	e.env.AddDocument(d)
	return nil
}

// LoadFile shreds and indexes an XML file; queries address it by the given
// name (or the path if name is empty).
func (e *Engine) LoadFile(name, path string) error {
	d, err := xmltree.ParseFile(name, path)
	if err != nil {
		return err
	}
	e.env.AddDocument(d)
	return nil
}

// LoadDocument registers a pre-shredded document (e.g. from the dataset
// generators in internal/datagen).
func (e *Engine) LoadDocument(d *xmltree.Document) {
	e.env.AddDocument(d)
}

// Stats reports how a query evaluation spent its work.
type Stats struct {
	// Rows is the number of result items.
	Rows int
	// Elapsed is the wall-clock evaluation time, sampling included.
	Elapsed time.Duration
	// ExecTuples and SampleTuples split the deterministic tuple work
	// between query execution and optimizer sampling.
	ExecTuples, SampleTuples int64
	// CumulativeIntermediate sums all intermediate result cardinalities.
	CumulativeIntermediate int64
	// Plan renders the executed edge order.
	Plan string
}

// Result is a query result: the serialized XML of every returned item, in
// query order, plus evaluation statistics.
type Result struct {
	Items []string
	Stats Stats
}

// Query evaluates an XQuery with the ROX run-time optimizer.
func (e *Engine) Query(q string) (*Result, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return nil, err
	}
	e.env.Rec.Reset()
	sw := metrics.Start()
	rel, res, err := core.Run(e.env, comp.Graph, comp.Tail, e.opts)
	if err != nil {
		return nil, err
	}
	elapsed := sw.Elapsed()
	out, err := e.serialize(comp, rel)
	if err != nil {
		return nil, err
	}
	out.Stats = Stats{
		Rows:                   rel.NumRows(),
		Elapsed:                elapsed,
		ExecTuples:             res.ExecCost.Tuples,
		SampleTuples:           res.SampleCost.Tuples,
		CumulativeIntermediate: res.CumulativeIntermediate,
		Plan:                   res.Plan.String(),
	}
	return out, nil
}

// QueryStatic evaluates an XQuery with the classical compile-time baseline:
// a static plan ordered by per-document statistics, blind to correlations.
func (e *Engine) QueryStatic(q string) (*Result, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return nil, err
	}
	pl, err := classical.StaticPlan(e.env, comp.Graph)
	if err != nil {
		return nil, err
	}
	e.env.Rec.Reset()
	sw := metrics.Start()
	rel, stats, err := plan.Run(e.env, comp.Graph, pl, comp.Tail)
	if err != nil {
		return nil, err
	}
	elapsed := sw.Elapsed()
	out, err := e.serialize(comp, rel)
	if err != nil {
		return nil, err
	}
	out.Stats = Stats{
		Rows:                   rel.NumRows(),
		Elapsed:                elapsed,
		ExecTuples:             e.env.Rec.CostOf(metrics.PhaseExecute).Tuples,
		CumulativeIntermediate: stats.CumulativeIntermediate,
		Plan:                   pl.String(),
	}
	return out, nil
}

// Explain compiles a query and returns the Join Graph rendering — what the
// run-time optimizer receives.
func (e *Engine) Explain(q string) (string, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return "", err
	}
	return comp.Graph.String(), nil
}

// XPath evaluates an absolute XPath expression over one loaded document
// using the staircase-join evaluator, returning the serialized result nodes
// in document order. This is the direct path-evaluation interface; full
// FLWOR queries go through Query.
func (e *Engine) XPath(docName, path string) ([]string, error) {
	ix, err := e.env.Index(docName)
	if err != nil {
		return nil, ErrNoSuchDocument(docName)
	}
	nodes, err := xpath.Eval(ix, path)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = xmltree.SerializeString(ix.Doc(), n)
	}
	return out, nil
}

// XPathCount evaluates an XPath expression and returns only the result
// cardinality (free with index-supported evaluation).
func (e *Engine) XPathCount(docName, path string) (int, error) {
	ix, err := e.env.Index(docName)
	if err != nil {
		return 0, ErrNoSuchDocument(docName)
	}
	return xpath.Count(ix, path)
}

func (e *Engine) serialize(comp *xquery.Compiled, rel *table.Relation) (*Result, error) {
	ret := comp.Return
	if ret.Count {
		// count($v): a single numeric item.
		return &Result{Items: []string{strconv.Itoa(rel.NumRows())}}, nil
	}
	n := rel.NumRows()
	out := &Result{Items: make([]string, 0, n)}
	for row := 0; row < n; row++ {
		var sb strings.Builder
		if ret.Elem != "" {
			sb.WriteString("<" + ret.Elem + ">")
		}
		for _, v := range ret.Vars {
			vertex := comp.Vars[v]
			sb.WriteString(xmltree.SerializeString(rel.Doc(vertex), rel.Column(vertex)[row]))
		}
		if ret.Elem != "" {
			sb.WriteString("</" + ret.Elem + ">")
		}
		out.Items = append(out.Items, sb.String())
	}
	return out, nil
}

// Version is the library version.
const Version = "1.0.0"

// ErrNoSuchDocument formats the common failure of querying an unloaded
// document — exposed for user-friendly error matching.
func ErrNoSuchDocument(name string) error {
	return fmt.Errorf("rox: document %q not loaded", name)
}
