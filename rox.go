// Package rox is a from-scratch Go reproduction of "ROX: Run-time
// Optimization of XQueries" (Abdel Kader, Boncz, Manegold, van Keulen,
// SIGMOD 2009): an XQuery engine whose optimizer executes, materializes
// partial results, and uses cut-off sampling over the live intermediates to
// decide — at run time — the order of XPath steps and equi-joins of a query.
//
// The Engine is the high-level entry point:
//
//	eng := rox.NewEngine()
//	eng.LoadXML("people.xml", "<people>…</people>")
//	res, err := eng.Query(`for $p in doc("people.xml")//person return $p`)
//	for _, item := range res.Items { fmt.Println(item) }
//
// Query uses the ROX run-time optimizer; QueryStatic runs the classical
// compile-time baseline of the paper's evaluation for comparison. The
// building blocks (shredded storage, indices, staircase joins, Join Graphs,
// the optimizer, dataset generators, experiment drivers) live under
// internal/ and are documented in DESIGN.md.
//
// One Engine serves any number of concurrent queries over its loaded
// documents: the corpus lives in an immutable shared catalog and every
// Query/QueryStatic call gets its own per-query evaluation state. See Pool
// for a bounded-concurrency front end and cmd/roxserve for an HTTP server
// built on it.
package rox

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/classical"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// Engine evaluates XQueries over a set of loaded documents.
//
// Concurrency contract: concurrent Query, QueryStatic, QueryContext, Explain,
// XPath and XPathCount calls are safe — the loaded corpus (documents +
// indices) is an immutable plan.Catalog shared by all in-flight queries, and
// each call creates its own per-query state (cost recorder and seeded random
// stream). Load* calls swap in a copy-on-write catalog under a write lock, so
// they may run while queries are in flight: each query sees the catalog as of
// its start. For reproducibility, a fixed WithSeed seed yields the same plan
// and results on every call, sequential or concurrent.
type Engine struct {
	mu   sync.RWMutex  // guards cat (pointer swap on load)
	cat  *plan.Catalog // immutable once published; replaced, never mutated
	opts core.Options
	seed int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithSampleSize sets the optimizer's sample size τ (default 100).
func WithSampleSize(tau int) Option {
	return func(e *Engine) { e.opts.Tau = tau }
}

// WithSeed fixes the random source of the sampling optimizer, making runs
// reproducible (default 1).
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithOptimizerOptions replaces the full optimizer configuration (ablation
// switches included); see core.Options.
func WithOptimizerOptions(o core.Options) Option {
	return func(e *Engine) { e.opts = o }
}

// NewEngine returns an empty engine.
func NewEngine(options ...Option) *Engine {
	e := &Engine{opts: core.DefaultOptions(), seed: 1, cat: plan.NewCatalog()}
	for _, o := range options {
		o(e)
	}
	return e
}

// catalog returns the current catalog snapshot. Queries run against the
// snapshot; a concurrent load publishes a new catalog without disturbing
// them.
func (e *Engine) catalog() *plan.Catalog {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cat
}

// publish registers a document through a copy-on-write catalog swap. The
// index build (the expensive part) happens outside the lock.
func (e *Engine) publish(d *xmltree.Document) {
	ix := index.New(d)
	e.mu.Lock()
	cat := e.cat.Clone()
	cat.AddIndexed(ix)
	e.cat = cat
	e.mu.Unlock()
}

// newQueryEnv builds the per-query evaluation state over the current
// catalog snapshot.
func (e *Engine) newQueryEnv() *plan.Env {
	return plan.NewQueryEnv(e.catalog(), metrics.NewRecorder(), e.seed)
}

// LoadXML shreds and indexes an XML document given as a string. The name is
// what doc("name") in queries refers to.
func (e *Engine) LoadXML(name, xml string) error {
	d, err := xmltree.ParseString(name, xml)
	if err != nil {
		return err
	}
	e.publish(d)
	return nil
}

// Load shreds and indexes an XML document from a reader.
func (e *Engine) Load(name string, r io.Reader) error {
	d, err := xmltree.Parse(name, r, xmltree.ParseOptions{})
	if err != nil {
		return err
	}
	e.publish(d)
	return nil
}

// LoadFile shreds and indexes an XML file; queries address it by the given
// name (or the path if name is empty).
func (e *Engine) LoadFile(name, path string) error {
	d, err := xmltree.ParseFile(name, path)
	if err != nil {
		return err
	}
	e.publish(d)
	return nil
}

// LoadDocument registers a pre-shredded document (e.g. from the dataset
// generators in internal/datagen).
func (e *Engine) LoadDocument(d *xmltree.Document) {
	e.publish(d)
}

// Documents returns the names of the currently loaded documents, sorted.
func (e *Engine) Documents() []string {
	return e.catalog().Names()
}

// Stats reports how a query evaluation spent its work.
type Stats struct {
	// Rows is the number of result items.
	Rows int
	// Elapsed is the wall-clock evaluation time, sampling included.
	Elapsed time.Duration
	// ExecTuples and SampleTuples split the deterministic tuple work
	// between query execution and optimizer sampling.
	ExecTuples, SampleTuples int64
	// CumulativeIntermediate sums all intermediate result cardinalities.
	CumulativeIntermediate int64
	// Plan renders the executed edge order.
	Plan string
}

// Result is a query result: the serialized XML of every returned item, in
// query order, plus evaluation statistics.
type Result struct {
	Items []string
	Stats Stats
}

// Query evaluates an XQuery with the ROX run-time optimizer. Safe to call
// from any number of goroutines.
func (e *Engine) Query(q string) (*Result, error) {
	res, _, err := e.query(e.newQueryEnv(), q)
	return res, err
}

// QueryContext is Query with cancellation: when ctx is canceled or exceeds
// its deadline, the evaluation aborts between operator executions and the
// context's error is returned.
func (e *Engine) QueryContext(ctx context.Context, q string) (*Result, error) {
	env := e.newQueryEnv()
	env.Interrupt = ctx.Err
	res, _, err := e.query(env, q)
	return res, err
}

// QueryStatic evaluates an XQuery with the classical compile-time baseline:
// a static plan ordered by per-document statistics, blind to correlations.
// Safe to call from any number of goroutines.
func (e *Engine) QueryStatic(q string) (*Result, error) {
	res, _, err := e.queryStatic(e.newQueryEnv(), q)
	return res, err
}

// QueryStaticContext is QueryStatic with cancellation, like QueryContext.
func (e *Engine) QueryStaticContext(ctx context.Context, q string) (*Result, error) {
	env := e.newQueryEnv()
	env.Interrupt = ctx.Err
	res, _, err := e.queryStatic(env, q)
	return res, err
}

// query runs the ROX optimizer path in the given per-query environment and
// returns the result plus the environment's recorder (for aggregation).
func (e *Engine) query(env *plan.Env, q string) (*Result, *metrics.Recorder, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return nil, env.Rec, err
	}
	sw := metrics.Start()
	rel, res, err := core.Run(env, comp.Graph, comp.Tail, e.opts)
	if err != nil {
		return nil, env.Rec, err
	}
	elapsed := sw.Elapsed()
	out, err := serialize(comp, rel)
	if err != nil {
		return nil, env.Rec, err
	}
	out.Stats = Stats{
		Rows:                   rel.NumRows(),
		Elapsed:                elapsed,
		ExecTuples:             res.ExecCost.Tuples,
		SampleTuples:           res.SampleCost.Tuples,
		CumulativeIntermediate: res.CumulativeIntermediate,
		Plan:                   res.Plan.String(),
	}
	return out, env.Rec, nil
}

// queryStatic runs the classical baseline path in the given per-query
// environment.
func (e *Engine) queryStatic(env *plan.Env, q string) (*Result, *metrics.Recorder, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return nil, env.Rec, err
	}
	// Plan-time statistics are the optimizer's work, not query execution;
	// charge them to a scratch recorder as the baseline prescribes.
	pl, err := classical.StaticPlan(env.WithScratchRecorder(), comp.Graph)
	if err != nil {
		return nil, env.Rec, err
	}
	sw := metrics.Start()
	rel, stats, err := plan.Run(env, comp.Graph, pl, comp.Tail)
	if err != nil {
		return nil, env.Rec, err
	}
	elapsed := sw.Elapsed()
	out, err := serialize(comp, rel)
	if err != nil {
		return nil, env.Rec, err
	}
	out.Stats = Stats{
		Rows:                   rel.NumRows(),
		Elapsed:                elapsed,
		ExecTuples:             env.Rec.CostOf(metrics.PhaseExecute).Tuples,
		CumulativeIntermediate: stats.CumulativeIntermediate,
		Plan:                   pl.String(),
	}
	return out, env.Rec, nil
}

// Explain compiles a query and returns the Join Graph rendering — what the
// run-time optimizer receives.
func (e *Engine) Explain(q string) (string, error) {
	comp, err := xquery.CompileString(q, xquery.CompileOptions{})
	if err != nil {
		return "", err
	}
	return comp.Graph.String(), nil
}

// XPath evaluates an absolute XPath expression over one loaded document
// using the staircase-join evaluator, returning the serialized result nodes
// in document order. This is the direct path-evaluation interface; full
// FLWOR queries go through Query.
func (e *Engine) XPath(docName, path string) ([]string, error) {
	ix, err := e.catalog().Index(docName)
	if err != nil {
		return nil, ErrNoSuchDocument(docName)
	}
	nodes, err := xpath.Eval(ix, path)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = xmltree.SerializeString(ix.Doc(), n)
	}
	return out, nil
}

// XPathCount evaluates an XPath expression and returns only the result
// cardinality (free with index-supported evaluation).
func (e *Engine) XPathCount(docName, path string) (int, error) {
	ix, err := e.catalog().Index(docName)
	if err != nil {
		return 0, ErrNoSuchDocument(docName)
	}
	return xpath.Count(ix, path)
}

func serialize(comp *xquery.Compiled, rel *table.Relation) (*Result, error) {
	ret := comp.Return
	if ret.Count {
		// count($v): a single numeric item.
		return &Result{Items: []string{strconv.Itoa(rel.NumRows())}}, nil
	}
	n := rel.NumRows()
	out := &Result{Items: make([]string, 0, n)}
	for row := 0; row < n; row++ {
		var sb strings.Builder
		if ret.Elem != "" {
			sb.WriteString("<" + ret.Elem + ">")
		}
		for _, v := range ret.Vars {
			vertex := comp.Vars[v]
			sb.WriteString(xmltree.SerializeString(rel.Doc(vertex), rel.Column(vertex)[row]))
		}
		if ret.Elem != "" {
			sb.WriteString("</" + ret.Elem + ">")
		}
		out.Items = append(out.Items, sb.String())
	}
	return out, nil
}

// Version is the library version.
const Version = "1.0.0"

// ErrNoSuchDocument formats the common failure of querying an unloaded
// document — exposed for user-friendly error matching.
func ErrNoSuchDocument(name string) error {
	return fmt.Errorf("rox: document %q not loaded", name)
}
