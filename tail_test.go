package rox

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// tailEngine loads a small shop corpus with numeric and non-numeric leaves.
func tailEngine(t *testing.T) *Engine {
	t.Helper()
	eng := NewEngine()
	if err := eng.LoadXML("shop.xml", `<shop>
		<item id="i1"><quantity>1</quantity><price>10</price></item>
		<item id="i2"><quantity>2</quantity><price>25.5</price></item>
		<item id="i3"><quantity>1</quantity><price>30</price></item>
		<item id="i4"><quantity>3</quantity></item>
	</shop>`); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestAggregateResults pins the aggregate values and the Rows=1 contract on
// the cold path, the prepared-replay path and the static baseline.
func TestAggregateResults(t *testing.T) {
	eng := tailEngine(t)
	cases := []struct{ q, want string }{
		{`for $i in doc("shop.xml")//item return count($i)`, "4"},
		{`for $i in doc("shop.xml")//item return sum($i/price)`, "65.5"},
		{`for $i in doc("shop.xml")//item return sum($i/quantity)`, "7"},
		{`for $i in doc("shop.xml")//item return avg($i/price)`, "21.833333333333332"},
		{`for $i in doc("shop.xml")//item return min($i/price)`, "10"},
		{`for $i in doc("shop.xml")//item return max($i/price)`, "30"},
	}
	for _, c := range cases {
		prep, err := eng.Prepare(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		for _, phase := range []string{"cold", "replay", "static"} {
			var res *Result
			switch phase {
			case "static":
				res, err = eng.QueryStatic(c.q)
			default:
				res, err = prep.Query()
			}
			if err != nil {
				t.Fatalf("%s (%s): %v", c.q, phase, err)
			}
			if len(res.Items) != 1 || res.Items[0] != c.want {
				t.Errorf("%s (%s) = %v, want [%s]", c.q, phase, res.Items, c.want)
			}
			if res.Stats.Rows != 1 {
				t.Errorf("%s (%s): Stats.Rows = %d, want 1", c.q, phase, res.Stats.Rows)
			}
			if phase == "replay" && !res.Stats.CacheHit {
				t.Errorf("%s: replay was not a cache hit", c.q)
			}
		}
	}
}

// TestAggregateEmptySequence: avg/min/max over no matches render the empty
// item; sum and count have identities. Rows stays 1.
func TestAggregateEmptySequence(t *testing.T) {
	eng := tailEngine(t)
	cases := []struct{ q, want string }{
		{`for $i in doc("shop.xml")//item return sum($i/missing)`, "0"},
		{`for $i in doc("shop.xml")//item return avg($i/missing)`, ""},
		{`for $i in doc("shop.xml")//item return min($i/missing)`, ""},
		{`for $i in doc("shop.xml")//item return max($i/missing)`, ""},
	}
	for _, c := range cases {
		res, err := eng.Query(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(res.Items) != 1 || res.Items[0] != c.want || res.Stats.Rows != 1 {
			t.Errorf("%s = %v (rows %d), want [%q] with rows 1", c.q, res.Items, res.Stats.Rows, c.want)
		}
	}
}

// TestAggregateNonNumericFailsCleanly: aggregating a path with non-numeric
// values is a query error (never a panic), on both engine paths.
func TestAggregateNonNumericFailsCleanly(t *testing.T) {
	eng := tailEngine(t)
	for _, q := range []string{
		`for $i in doc("shop.xml")//item return sum($i/@id)`,
		`for $i in doc("shop.xml")//item return min($i/@id)`,
	} {
		if _, err := eng.Query(q); !errors.Is(err, ErrNonNumericAggregate) {
			t.Errorf("%s: err = %v, want ErrNonNumericAggregate", q, err)
		}
		if _, err := eng.QueryStatic(q); !errors.Is(err, ErrNonNumericAggregate) {
			t.Errorf("%s (static): err = %v, want ErrNonNumericAggregate", q, err)
		}
	}
}

// TestOrderByResults pins ordering semantics: key order, direction, absent
// keys first, ties in document order, Rows = len(Items) — cold, replay and
// static.
func TestOrderByResults(t *testing.T) {
	eng := tailEngine(t)
	id := func(items []string) string {
		var ids []string
		for _, it := range items {
			start := strings.Index(it, `id="`) + 4
			ids = append(ids, it[start:start+2])
		}
		return strings.Join(ids, ",")
	}
	cases := []struct{ q, want string }{
		// i4 has no price → absent key sorts first.
		{`for $i in doc("shop.xml")//item order by $i/price return $i`, "i4,i1,i2,i3"},
		{`for $i in doc("shop.xml")//item order by $i/price descending return $i`, "i3,i2,i1,i4"},
		// quantity ties (i1, i3 = 1) keep document order.
		{`for $i in doc("shop.xml")//item order by $i/quantity return $i`, "i1,i3,i2,i4"},
		{`for $i in doc("shop.xml")//item order by $i/quantity descending return $i`, "i4,i2,i1,i3"},
		// String keys order bytewise.
		{`for $i in doc("shop.xml")//item order by $i/@id descending return $i`, "i4,i3,i2,i1"},
	}
	for _, c := range cases {
		prep, err := eng.Prepare(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		for _, phase := range []string{"cold", "replay", "static"} {
			var res *Result
			switch phase {
			case "static":
				res, err = eng.QueryStatic(c.q)
			default:
				res, err = prep.Query()
			}
			if err != nil {
				t.Fatalf("%s (%s): %v", c.q, phase, err)
			}
			if got := id(res.Items); got != c.want {
				t.Errorf("%s (%s) = %s, want %s", c.q, phase, got, c.want)
			}
			if res.Stats.Rows != len(res.Items) {
				t.Errorf("%s (%s): Rows = %d, len(Items) = %d", c.q, phase, res.Stats.Rows, len(res.Items))
			}
			if phase == "replay" && (!res.Stats.CacheHit || res.Stats.SampleTuples != 0) {
				t.Errorf("%s replay: CacheHit=%v SampleTuples=%d", c.q, res.Stats.CacheHit, res.Stats.SampleTuples)
			}
		}
	}
}

// TestTailChangeIsCacheMiss: queries sharing a Join Graph but differing only
// in their tail (order direction, key path, aggregate kind) must key
// separately in the plan cache — a tail change is a miss, never a replay
// under the wrong tail.
func TestTailChangeIsCacheMiss(t *testing.T) {
	eng := tailEngine(t)
	variants := []string{
		`for $i in doc("shop.xml")//item return sum($i/quantity)`,
		`for $i in doc("shop.xml")//item return avg($i/quantity)`,
		`for $i in doc("shop.xml")//item return count($i)`,
		`for $i in doc("shop.xml")//item order by $i/quantity return $i`,
		`for $i in doc("shop.xml")//item order by $i/quantity descending return $i`,
		`for $i in doc("shop.xml")//item order by $i/@id return $i`,
		`for $i in doc("shop.xml")//item return $i`,
	}
	fps := make(map[string]string)
	for _, q := range variants {
		prep, err := eng.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if prev, dup := fps[prep.Fingerprint()]; dup {
			t.Errorf("cache key collision between %q and %q", prev, q)
		}
		fps[prep.Fingerprint()] = q
		res, err := prep.Query()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Stats.CacheHit {
			t.Errorf("%s: first run hit a sibling tail's cached plan", q)
		}
	}
	if stats := eng.CacheStats(); stats.Size != len(variants) {
		t.Errorf("cache size = %d, want one entry per tail variant (%d)", stats.Size, len(variants))
	}
}

// TestScatterAggregateStats: scatter-gather aggregates report Rows=1 with
// the single merged item, and per-shard stats still roll up.
func TestScatterAggregateStats(t *testing.T) {
	testutil.CheckGoroutines(t)
	eng := NewEngine()
	for i, xml := range []string{
		`<shop><item><price>10</price></item><item><price>20</price></item></shop>`,
		`<shop><item><price>30</price></item></shop>`,
		`<shop></shop>`, // empty shard: identity partial state
	} {
		if err := eng.LoadCollectionShardXML("shop", strings.Repeat("s", i+1)+".xml", xml); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Query(`for $i in collection("shop")//item return sum($i/price)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0] != "60" || res.Stats.Rows != 1 {
		t.Errorf("scatter sum = %v (rows %d), want [60] rows 1", res.Items, res.Stats.Rows)
	}
	if len(res.Stats.Shards) != 3 {
		t.Errorf("shard stats = %d, want 3", len(res.Stats.Shards))
	}
	rows, err := eng.Execute(context.Background(), Request{Query: `for $i in collection("shop")//item return avg($i/price)`})
	if err != nil {
		t.Fatal(err)
	}
	if avg := testutil.DrainCursor(t, rows); len(avg) != 1 || avg[0] != "20" {
		t.Errorf("scatter avg = %v, want [20]", avg)
	}
}
