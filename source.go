package rox

import (
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/index"
	"repro/internal/xmltree"
)

// Source is one loadable document in any of the engine's ingestion formats:
// XML text, a reader, a file, a packed .roxd container, or a pre-shredded
// document. Build one with the From* constructors and load it with
// Engine.LoadSource (single document) or Engine.LoadCollectionSource (shards
// of a collection). The ten legacy Load* methods are thin wrappers over this
// surface.
//
// A Source is single-use in spirit but safe to reload: every open call
// re-reads its input (re-parses the XML, re-opens the file), so loading the
// same Source twice registers the current state of the input both times.
type Source struct {
	// open materializes the document's index. name is the caller's override:
	// "" means use the source's intrinsic name; fixed-name sources (packed
	// containers, pre-shredded documents) reject a conflicting override.
	open func(name string) (*index.Index, error)
	desc string
}

// FromXML sources a document from XML text; name is the document name
// (doc("name") in queries), overridable at LoadSource.
func FromXML(name, xml string) Source {
	return Source{desc: "xml", open: func(override string) (*index.Index, error) {
		d, err := xmltree.ParseString(pick(override, name), xml)
		if err != nil {
			return nil, err
		}
		return index.New(d), nil
	}}
}

// FromReader sources a document from an XML reader. The reader is consumed
// when the source is loaded — a Source built from a reader loads once.
func FromReader(name string, r io.Reader) Source {
	return Source{desc: "reader", open: func(override string) (*index.Index, error) {
		d, err := xmltree.Parse(pick(override, name), r, xmltree.ParseOptions{})
		if err != nil {
			return nil, err
		}
		return index.New(d), nil
	}}
}

// FromFile sources a document from an XML file; an empty name (and empty
// override) names the document after the path's base name, like LoadFile.
func FromFile(name, path string) Source {
	return Source{desc: "file " + path, open: func(override string) (*index.Index, error) {
		docName := pick(override, name)
		if docName == "" {
			docName = filepath.Base(path)
		}
		d, err := xmltree.ParseFile(docName, path)
		if err != nil {
			return nil, err
		}
		return index.New(d), nil
	}}
}

// FromPacked sources a document from a .roxd container produced by
// cmd/roxpack (or datagen -pack): memory-mapped, indices attached from disk,
// no O(n) rebuild. The document name is the one stored in the container; a
// LoadSource name override must match it or the load errors (a packed
// document cannot be renamed — its serialized index postings embed the name).
func FromPacked(path string) Source {
	return Source{desc: "packed " + path, open: func(override string) (*index.Index, error) {
		ix, err := index.OpenPackedFile(path)
		if err != nil {
			return nil, err
		}
		if override != "" && override != ix.Doc().Name() {
			return nil, fmt.Errorf("rox: packed file %s holds document %q, not %q (packed documents cannot be renamed)",
				path, ix.Doc().Name(), override)
		}
		return ix, nil
	}}
}

// FromDocument sources a pre-shredded document (e.g. from the dataset
// generators in internal/datagen). The document keeps its own name; a
// LoadSource name override must match it.
func FromDocument(d *xmltree.Document) Source {
	return Source{desc: "document " + d.Name(), open: func(override string) (*index.Index, error) {
		if override != "" && override != d.Name() {
			return nil, fmt.Errorf("rox: document is named %q, not %q (pre-shredded documents cannot be renamed)",
				d.Name(), override)
		}
		return index.New(d), nil
	}}
}

// pick resolves a name override against a constructor-time name.
func pick(override, name string) string {
	if override != "" {
		return override
	}
	return name
}

// LoadSource loads one document from any Source. name overrides the source's
// intrinsic document name when non-empty ("" keeps it); fixed-name sources
// (FromPacked, FromDocument) reject a conflicting override. Like every
// Load*, the expensive work (parsing, shredding, index building, mapping)
// happens outside the engine lock and the registration is one copy-on-write
// catalog swap, safe while queries are in flight.
func (e *Engine) LoadSource(name string, src Source) error {
	ix, err := src.open(name)
	if err != nil {
		return err
	}
	e.publishIndexed(ix)
	return nil
}

// LoadCollectionSource loads every Source as a shard of the named collection,
// in argument order (which becomes the collection's result order); each
// shard keeps its source's intrinsic document name. All sources materialize
// before anything registers, and registration is one copy-on-write swap:
// concurrent queries see either the catalog before the call or the complete
// collection, never a prefix — and a source error loads nothing at all.
func (e *Engine) LoadCollectionSource(coll string, srcs ...Source) error {
	ixs := make([]*index.Index, len(srcs)) // the expensive part, outside the lock
	for i, src := range srcs {
		ix, err := src.open("")
		if err != nil {
			return fmt.Errorf("rox: collection %q shard %d (%s): %w", coll, i, src.desc, err)
		}
		ixs[i] = ix
	}
	e.mu.Lock()
	cat := e.cat.Clone()
	for _, ix := range ixs {
		cat.AddCollectionShard(coll, ix)
	}
	e.cat = cat
	e.mu.Unlock()
	return nil
}
