package rox

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// packShardFiles writes each document as a packed .roxd container (with
// persistent index sections) under dir and returns the file paths in shard
// order.
func packShardFiles(t *testing.T, dir string, docs []*xmltree.Document) []string {
	t.Helper()
	paths := make([]string, len(docs))
	for i, d := range docs {
		paths[i] = filepath.Join(dir, fmt.Sprintf("%s.roxd", d.Name()))
		if err := index.WritePackedFile(paths[i], index.New(d)); err != nil {
			t.Fatalf("pack shard %s: %v", d.Name(), err)
		}
	}
	return paths
}

// TestPackedCollectionEquivalence is the storage half of the sharding
// contract: a collection served from memory-mapped packed shard files must
// answer every tail shape byte-identically to the same corpus loaded as one
// in-memory document — ordered, aggregate, limit/offset and count tails, at
// 4 and 12 shards, cold and on the prepared replay.
func TestPackedCollectionEquivalence(t *testing.T) {
	cfg := datagen.DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 200, 120, 100
	single := NewEngine()
	single.LoadDocument(datagen.XMark(cfg))

	queries := []struct{ name, docQ, collQ string }{
		{
			name:  "ordered persons",
			docQ:  `for $p in doc("xmark.xml")//person[education] order by $p/@id return $p`,
			collQ: `for $p in collection("xmark")//person[education] order by $p/@id return $p`,
		},
		{
			name:  "sum of initial prices",
			docQ:  `for $a in doc("xmark.xml")//open_auction return sum($a/initial)`,
			collQ: `for $a in collection("xmark")//open_auction return sum($a/initial)`,
		},
		{
			name:  "avg of reserves",
			docQ:  `for $a in doc("xmark.xml")//open_auction[reserve] return avg($a/reserve)`,
			collQ: `for $a in collection("xmark")//open_auction[reserve] return avg($a/reserve)`,
		},
		{
			name:  "limit/offset window over ordered auctions",
			docQ:  `for $a in doc("xmark.xml")//open_auction where $a/current > 100 order by $a/current descending return $a limit 10 offset 3`,
			collQ: `for $a in collection("xmark")//open_auction where $a/current > 100 order by $a/current descending return $a limit 10 offset 3`,
		},
		{
			name:  "count of bidders",
			docQ:  `for $b in doc("xmark.xml")//open_auction[reserve]//bidder return count($b)`,
			collQ: `for $b in collection("xmark")//open_auction[reserve]//bidder return count($b)`,
		},
	}

	for _, shards := range []int{4, 12} {
		paths := packShardFiles(t, t.TempDir(), datagen.XMarkShards(cfg, shards))
		packed := NewEngine()
		if err := packed.LoadCollectionPacked("xmark", paths); err != nil {
			t.Fatalf("%d shards: LoadCollectionPacked: %v", shards, err)
		}
		if runtime.GOOS == "linux" {
			for _, name := range packed.Documents() {
				ix, err := packed.catalog().Index(name)
				if err != nil {
					t.Fatal(err)
				}
				if !ix.Doc().Mapped() {
					t.Errorf("%d shards: shard %s is not memory-mapped", shards, name)
				}
			}
		}
		for _, q := range queries {
			t.Run(fmt.Sprintf("%d-shard/%s", shards, q.name), func(t *testing.T) {
				want, err := single.Query(q.docQ)
				if err != nil {
					t.Fatalf("single-catalog query: %v", err)
				}
				prep, err := packed.Prepare(q.collQ)
				if err != nil {
					t.Fatalf("prepare: %v", err)
				}
				cold, err := prep.Query()
				if err != nil {
					t.Fatalf("cold scatter: %v", err)
				}
				assertSameItems(t, "cold scatter", want.Items, cold.Items)
				replay, err := prep.Query()
				if err != nil {
					t.Fatalf("prepared replay: %v", err)
				}
				assertSameItems(t, "prepared replay", want.Items, replay.Items)
				if !replay.Stats.CacheHit || replay.Stats.SampleTuples != 0 {
					t.Errorf("replay: CacheHit=%v SampleTuples=%d, want cached replay without sampling",
						replay.Stats.CacheHit, replay.Stats.SampleTuples)
				}
			})
		}
	}
}

// TestPackedShardSwapDrift is the O(1)-swap contract: replacing one packed
// shard file of a served collection (10× the rows — far past the drift
// ratio) must re-optimize only that shard and keep every tail byte-identical
// to a fresh single-document engine over the post-swap corpus.
func TestPackedShardSwapDrift(t *testing.T) {
	dir := t.TempDir()
	spans := [][2]int{{0, 30}, {100, 30}, {200, 30}}
	packPpl := func(i int, span [2]int) string {
		d, err := xmltree.ParseString(fmt.Sprintf("ppl-%d.xml", i), pricedShardXML(span[0], span[1]))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("ppl-%d-%d.roxd", i, span[1]))
		if err := index.WritePackedFile(path, index.New(d)); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var paths []string
	for i, sp := range spans {
		paths = append(paths, packPpl(i, sp))
	}
	packed := NewEngine()
	if err := packed.LoadCollectionPacked("ppl", paths); err != nil {
		t.Fatal(err)
	}

	singleFor := func(spans [][2]int) *Engine {
		xml := "<people>"
		for _, sp := range spans {
			inner := pricedShardXML(sp[0], sp[1])
			xml += inner[len("<people>") : len(inner)-len("</people>")]
		}
		xml += "</people>"
		eng := NewEngine()
		if err := eng.LoadXML("ppl.xml", xml); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	queries := []struct{ name, collQ, docQ string }{
		{"sum", `for $p in collection("ppl")//person return sum($p/salary)`,
			`for $p in doc("ppl.xml")//person return sum($p/salary)`},
		{"order by age desc", `for $p in collection("ppl")//person order by $p/age descending return $p`,
			`for $p in doc("ppl.xml")//person order by $p/age descending return $p`},
		{"window", `for $p in collection("ppl")//person order by $p/salary descending return $p limit 10 offset 2`,
			`for $p in doc("ppl.xml")//person order by $p/salary descending return $p limit 10 offset 2`},
	}
	preps := make([]*Prepared, len(queries))
	for i, q := range queries {
		p, err := packed.Prepare(q.collQ)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		preps[i] = p
	}
	single := singleFor(spans)
	for i, q := range queries {
		want, err := single.Query(q.docQ)
		if err != nil {
			t.Fatalf("%s single: %v", q.name, err)
		}
		got, err := preps[i].Query()
		if err != nil {
			t.Fatalf("%s cold: %v", q.name, err)
		}
		assertSameItems(t, q.name+" cold", want.Items, got.Items)
	}

	// The swap: a new packed file for the middle shard, mapped in O(1) under
	// the same stored document name while the old mapping drains.
	spans[1] = [2]int{100, 300}
	if err := packed.LoadCollectionShardPacked("ppl", packPpl(1, spans[1])); err != nil {
		t.Fatal(err)
	}
	single = singleFor(spans)
	for i, q := range queries {
		want, err := single.Query(q.docQ)
		if err != nil {
			t.Fatalf("%s single after swap: %v", q.name, err)
		}
		drift, err := preps[i].Query()
		if err != nil {
			t.Fatalf("%s drift: %v", q.name, err)
		}
		assertSameItems(t, q.name+" drift", want.Items, drift.Items)
		if !drift.Stats.Reoptimized {
			t.Errorf("%s: swapped shard did not re-optimize", q.name)
		}
		for _, sh := range drift.Stats.Shards {
			if sh.Shard != "ppl-1.xml" && (!sh.Stats.CacheHit || sh.Stats.SampleTuples != 0) {
				t.Errorf("%s: untouched shard %s lost its cached plan", q.name, sh.Shard)
			}
		}
		settled, err := preps[i].Query()
		if err != nil {
			t.Fatalf("%s settled: %v", q.name, err)
		}
		assertSameItems(t, q.name+" settled", want.Items, settled.Items)
		if !settled.Stats.CacheHit || settled.Stats.SampleTuples != 0 {
			t.Errorf("%s settled run missed the cache: CacheHit=%v SampleTuples=%d",
				q.name, settled.Stats.CacheHit, settled.Stats.SampleTuples)
		}
	}
}

// TestLoadPackedDocument covers the single-document packed loaders: a packed
// file queries identically to the XML it was shredded from, and a v1 binary
// file still loads through the same entry point.
func TestLoadPackedDocument(t *testing.T) {
	cfg := datagen.DefaultXMarkConfig()
	cfg.Persons, cfg.Items, cfg.OpenAuctions = 50, 30, 20
	d := datagen.XMark(cfg)

	mem := NewEngine()
	mem.LoadDocument(d)
	path := filepath.Join(t.TempDir(), "xmark.roxd")
	if err := index.WritePackedFile(path, index.New(d)); err != nil {
		t.Fatal(err)
	}
	packed := NewEngine()
	if err := packed.LoadPacked(path); err != nil {
		t.Fatal(err)
	}

	const q = `for $p in doc("xmark.xml")//person[education] order by $p/@id return $p`
	want, err := mem.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := packed.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameItems(t, "packed doc", want.Items, got.Items)

	if err := packed.LoadPacked(filepath.Join(t.TempDir(), "absent.roxd")); err == nil {
		t.Errorf("missing packed file should fail")
	}
}
