package rox

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

const ingestBase = `<site><person id="p1"><name>Alice</name><age>30</age></person></site>`

var ingestFrags = []string{
	`<person id="p2"><name>Bob</name><age>41</age></person>`,
	`<person id="p3"><name>Carol</name><age>25</age></person><person id="p4"><name>Dave</name><age>30</age></person>`,
	`<person id="p5"><name>Erin</name><age>52</age></person>`,
}

const ingestQuery = `for $p in doc("site.xml")//person[./age/text() > 28]/name return $p`

// ingestReference loads base+frags at once — the equivalence oracle.
func ingestReference(t *testing.T, frags int) *Engine {
	t.Helper()
	text := ingestBase
	for _, f := range ingestFrags[:frags] {
		text += f
	}
	ref := NewEngine()
	if err := ref.LoadXML("site.xml", text); err != nil {
		t.Fatal(err)
	}
	return ref
}

func mustQuery(t *testing.T, e *Engine, q string) []string {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res.Items
}

func TestIngestMatchesBulkLoad(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, frag := range ingestFrags {
		if err := eng.Append("site.xml", frag); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		ref := ingestReference(t, i+1)
		for _, q := range []string{
			ingestQuery,
			`for $p in doc("site.xml")//person order by $p/age return $p`,
			`for $p in doc("site.xml")//person return count($p)`,
			`for $p in doc("site.xml")//person order by $p/name return $p limit 2`,
		} {
			got, want := mustQuery(t, eng, q), mustQuery(t, ref, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("after batch %d, query %q:\n got %v\nwant %v", i+1, q, got, want)
			}
		}
	}
	st := eng.Ingest().Stats()
	if st.Appends != int64(len(ingestFrags)) || st.Commits != int64(len(ingestFrags)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.DeltaNodes == 0 || st.DeltaDocs != 1 {
		t.Fatalf("expected a live delta, got %+v", st)
	}
}

func TestIngestUncommittedInvisible(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	before := mustQuery(t, eng, ingestQuery)
	if err := eng.Append("site.xml", ingestFrags[0]); err != nil {
		t.Fatal(err)
	}
	if got := mustQuery(t, eng, ingestQuery); !reflect.DeepEqual(got, before) {
		t.Fatalf("uncommitted append visible: %v vs %v", got, before)
	}
	if _, err := eng.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := mustQuery(t, eng, ingestQuery); reflect.DeepEqual(got, before) {
		t.Fatal("committed append not visible")
	}
}

func TestIngestCreatesDocument(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	if err := eng.Append("fresh.xml", `<items><item k="1"/></items>`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("fresh.xml", `<item k="2"/>`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	got := mustQuery(t, eng, `for $i in doc("fresh.xml")//item return count($i)`)
	if !reflect.DeepEqual(got, []string{"2"}) {
		t.Fatalf("count = %v", got)
	}
}

func TestIngestGenerationAdvances(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for _, frag := range ingestFrags {
		gen := eng.catalog().DocGeneration("site.xml")
		if gen <= last && last != 0 {
			t.Fatalf("generation not monotonic: %d after %d", gen, last)
		}
		last = gen
		if err := eng.Append("site.xml", frag); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Commit(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if end := eng.catalog().DocGeneration("site.xml"); end <= last {
		t.Fatalf("final generation %d not past %d", end, last)
	}
}

func TestIngestPlanCacheAbsorbsCommit(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	// Warm the plan cache.
	res, err := eng.Query(ingestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Fatal("cold query reported a cache hit")
	}
	if err := eng.Append("site.xml", ingestFrags[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A small append stays within the drift ratio: the stale-generation
	// entry replays and revalidates rather than re-optimizing.
	res, err = eng.Query(ingestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit {
		t.Fatal("post-commit query missed the plan cache")
	}
	want := mustQuery(t, ingestReference(t, 1), ingestQuery)
	if !reflect.DeepEqual(res.Items, want) {
		t.Fatalf("replayed results %v, want %v", res.Items, want)
	}
}

func TestIngestCollectionRoundRobin(t *testing.T) {
	eng := NewEngine()
	for _, sh := range []string{"a.xml", "b.xml"} {
		if err := eng.LoadCollectionShardXML("people", sh, `<site/>`); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		frag := []string{
			`<person id="q1"><age>30</age></person>`,
			`<person id="q2"><age>31</age></person>`,
			`<person id="q3"><age>32</age></person>`,
			`<person id="q4"><age>33</age></person>`,
		}[i]
		if err := eng.Append("people", frag); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	got := mustQuery(t, eng, `for $p in collection("people")//person return count($p)`)
	if !reflect.DeepEqual(got, []string{"4"}) {
		t.Fatalf("collection count = %v", got)
	}
	// Round-robin across two shards: two fragments each.
	for _, sh := range []string{"a.xml", "b.xml"} {
		got := mustQuery(t, eng, `for $p in doc("`+sh+`")//person return count($p)`)
		if !reflect.DeepEqual(got, []string{"2"}) {
			t.Fatalf("shard %s count = %v", sh, got)
		}
	}
}

// TestIngestFourShardEquivalence is the wide-collection half of the
// equivalence proof: N mixed batches — some fragments addressed to specific
// shards, some round-robin through the collection name, commits interleaved
// — must leave a 4-shard collection answering every query shape (ordered,
// aggregate, limit tails, predicate scans) byte-identically to loading each
// shard's final content at once.
func TestIngestFourShardEquivalence(t *testing.T) {
	shards := []string{"s0.xml", "s1.xml", "s2.xml", "s3.xml"}
	person := func(i int) string {
		return fmt.Sprintf(`<person id="m%d"><name>n%d</name><age>%d</age></person>`, i, i%5, 20+i*3)
	}

	eng := NewEngine(WithSeed(3))
	for _, sh := range shards {
		if err := eng.LoadCollectionShardXML("people", sh, `<site/>`); err != nil {
			t.Fatal(err)
		}
	}
	// Replicate the ingester's routing: collection appends go round-robin
	// over the shard list in registration order.
	want := make(map[string]string, len(shards))
	rr := 0
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		target, frag := "people", person(i)
		if i%3 == 0 {
			target = shards[i%len(shards)]
		}
		if err := eng.Append(target, frag); err != nil {
			t.Fatal(err)
		}
		sh := target
		if sh == "people" {
			sh = shards[rr%len(shards)]
			rr++
		}
		want[sh] += frag
		if i%4 == 3 { // commit mid-stream so batches of mixed sizes publish
			if _, err := eng.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := eng.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	ref := NewEngine(WithSeed(3))
	for _, sh := range shards {
		if err := ref.LoadCollectionShardXML("people", sh, `<site>`+want[sh]+`</site>`); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		`for $p in collection("people")//person order by $p/age return $p`,
		`for $p in collection("people")//person return count($p)`,
		`for $p in collection("people")//person return sum($p/age)`,
		`for $p in collection("people")//person order by $p/age descending return $p limit 3`,
		`for $p in collection("people")//person[./age/text() > 30]/name return $p`,
	} {
		got, wantItems := mustQuery(t, eng, q), mustQuery(t, ref, q)
		if !reflect.DeepEqual(got, wantItems) {
			t.Fatalf("query %q:\n got %v\nwant %v", q, got, wantItems)
		}
	}
}

// TestIngestDriftReoptimizes closes the loop with the plan cache: a
// prepared query's cached plan survives small commits (stale-generation
// replay), but an ingest-driven 10× distribution shift must trip the
// cardinality drift check and re-optimize — with results identical to an
// engine that never cached anything.
func TestIngestDriftReoptimizes(t *testing.T) {
	const q = `for $n in doc("g.xml")//person/name return $n`
	eng := NewEngine(WithSeed(7))
	if err := eng.LoadXML("g.xml", driftDoc(40)); err != nil {
		t.Fatal(err)
	}
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHit {
		t.Fatal("cold prepared query cannot hit")
	}

	// Ingest persons 40..399 — the same content driftDoc(400) would carry —
	// in a handful of committed batches.
	ctx := context.Background()
	for lo := 40; lo < 400; lo += 120 {
		var sb strings.Builder
		for i := lo; i < lo+120 && i < 400; i++ {
			fmt.Fprintf(&sb, `<person id="p%d"><name>n%d</name></person>`, i, i%7)
		}
		if err := eng.Append("g.xml", sb.String()); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}

	res, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Error("10×-drifted replay must not count as a served cache hit")
	}
	if !res.Stats.Reoptimized {
		t.Error("ingest-driven 10× growth should re-optimize")
	}
	if cs := eng.CacheStats(); cs.Counters.Drifts != 1 {
		t.Errorf("drift count = %d, want 1: %+v", cs.Counters.Drifts, cs.Counters)
	}
	plain := NewEngine(WithSeed(7), WithPlanCache(0))
	if err := plain.LoadXML("g.xml", driftDoc(400)); err != nil {
		t.Fatal(err)
	}
	truth, err := plain.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Items, truth.Items) {
		t.Error("re-optimized results differ from uncached ground truth")
	}
	// The re-optimized plan is installed: the next execution replays clean.
	again, err := prep.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Stats.CacheHit || !reflect.DeepEqual(again.Items, truth.Items) {
		t.Errorf("post-drift prepared replay: hit=%v", again.Stats.CacheHit)
	}
}

// TestIngestConcurrentReaders races readers against a committing writer
// (run with -race): every query must land on a committed snapshot — the
// person count is always one of the published states, never a half-applied
// batch — and per-reader counts never move backwards.
func TestIngestConcurrentReaders(t *testing.T) {
	const batches = 30
	eng := NewEngine()
	if err := eng.LoadXML("site.xml", `<site><person id="c0"><age>20</age></person></site>`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query(`for $p in doc("site.xml")//person return count($p)`)
				if err != nil {
					errs <- err
					return
				}
				n, err := strconv.Atoi(res.Items[0])
				if err != nil || n < 1 || n > batches+1 {
					errs <- fmt.Errorf("impossible snapshot count %q", res.Items[0])
					return
				}
				if n < last {
					errs <- fmt.Errorf("count went backwards: %d after %d", n, last)
					return
				}
				last = n
			}
		}()
	}

	ctx := context.Background()
	for i := 1; i <= batches; i++ {
		if err := eng.Append("site.xml", fmt.Sprintf(`<person id="c%d"><age>%d</age></person>`, i, 20+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := mustQuery(t, eng, `for $p in doc("site.xml")//person return count($p)`); !reflect.DeepEqual(got, []string{fmt.Sprint(batches + 1)}) {
		t.Fatalf("final count = %v", got)
	}
}

func TestIngestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "ingest")

	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	if n, err := eng.OpenIngestDir(walDir); err != nil || n != 0 {
		t.Fatalf("first open: n=%d err=%v", n, err)
	}
	ctx := context.Background()
	for _, frag := range ingestFrags[:2] {
		if err := eng.Append("site.xml", frag); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// An uncommitted append must NOT survive the restart.
	if err := eng.Append("site.xml", ingestFrags[2]); err != nil {
		t.Fatal(err)
	}
	want := mustQuery(t, ingestReference(t, 2), ingestQuery)
	// Abandon the engine without committing — the crash.
	if err := eng.Ingest().Close(); err != nil {
		t.Fatal(err)
	}

	restarted := NewEngine()
	if err := restarted.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	n, err := restarted.OpenIngestDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d batches, want 2", n)
	}
	if got := mustQuery(t, restarted, ingestQuery); !reflect.DeepEqual(got, want) {
		t.Fatalf("after restart: %v, want %v", got, want)
	}
	st := restarted.Ingest().Stats()
	if !st.Durable || st.ReplayedBatches != 2 || st.LastCommitGen == 0 {
		t.Fatalf("restart stats: %+v", st)
	}
	// Re-pointing the counters at a serving aggregator must not lose the
	// replay history — roxserve attaches the aggregator after boot replay.
	var agg metrics.IngestCounters
	restarted.Ingest().SetCounters(&agg)
	if st = restarted.Ingest().Stats(); st.ReplayedBatches != 2 || st.LastCommitGen == 0 {
		t.Fatalf("stats lost across counter handoff: %+v", st)
	}
	// Ingest continues where the log left off, with increasing sequences.
	if err := restarted.Append("site.xml", ingestFrags[2]); err != nil {
		t.Fatal(err)
	}
	seq, err := restarted.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-restart commit seq %d, want 3", seq)
	}
	if got := mustQuery(t, restarted, ingestQuery); !reflect.DeepEqual(got, mustQuery(t, ingestReference(t, 3), ingestQuery)) {
		t.Fatalf("post-restart ingest diverged: %v", got)
	}
}

func TestIngestCompaction(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "ingest")

	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OpenIngestDir(walDir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, frag := range ingestFrags {
		if err := eng.Append("site.xml", frag); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stBefore := eng.Ingest().Stats()
	if stBefore.DeltaNodes == 0 || stBefore.WALSize == 0 {
		t.Fatalf("pre-compaction stats: %+v", stBefore)
	}
	if err := eng.Ingest().Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st := eng.Ingest().Stats()
	if st.DeltaNodes != 0 || st.WALSize != 0 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	want := mustQuery(t, ingestReference(t, 3), ingestQuery)
	if got := mustQuery(t, eng, ingestQuery); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction results: %v, want %v", got, want)
	}
	// Restart from the compacted snapshot: no batches to replay, results
	// identical even though the corpus load is stale (pre-ingest).
	restarted := NewEngine()
	if err := restarted.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	n, err := restarted.OpenIngestDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d batches after compaction, want 0", n)
	}
	if got := mustQuery(t, restarted, ingestQuery); !reflect.DeepEqual(got, want) {
		t.Fatalf("restart after compaction: %v, want %v", got, want)
	}
	// The snapshot file is a packed container on disk.
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	foundSnap := false
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".roxd" {
			foundSnap = true
		}
	}
	if !foundSnap {
		t.Fatal("no packed snapshot in ingest dir after compaction")
	}
	// Ingest continues on top of the compacted (mapped) base.
	if err := restarted.Append("site.xml", `<person id="p6"><name>Frank</name><age>60</age></person>`); err != nil {
		t.Fatal(err)
	}
	if _, err := restarted.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if got := mustQuery(t, restarted, `for $p in doc("site.xml")//person return count($p)`); !reflect.DeepEqual(got, []string{"6"}) {
		t.Fatalf("post-compaction ingest count: %v", got)
	}
}

func TestIngestAutoCompact(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	ing := eng.Ingest()
	ing.SetCompactAfter(1)
	if err := ing.Append("site.xml", ingestFrags[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := ing.Stats()
	if st.Compactions != 1 || st.DeltaNodes != 0 {
		t.Fatalf("auto-compaction stats: %+v", st)
	}
	want := mustQuery(t, ingestReference(t, 1), ingestQuery)
	if got := mustQuery(t, eng, ingestQuery); !reflect.DeepEqual(got, want) {
		t.Fatalf("after auto-compaction: %v, want %v", got, want)
	}
}

func TestIngestExternalSwapRebases(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXML("site.xml", ingestBase); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("site.xml", ingestFrags[0]); err != nil {
		t.Fatal(err)
	}
	// Someone reloads the document while an append is pending: the overlay
	// rebases onto the new base, retaining its appends.
	const newBase = `<site><person id="x1"><name>Zoe</name><age>99</age></person></site>`
	if err := eng.LoadXML("site.xml", newBase); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("site.xml", ingestFrags[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref := NewEngine()
	if err := ref.LoadXML("site.xml", newBase+ingestFrags[0]+ingestFrags[1]); err != nil {
		t.Fatal(err)
	}
	got, want := mustQuery(t, eng, ingestQuery), mustQuery(t, ref, ingestQuery)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after external swap: %v, want %v", got, want)
	}
}
